//! Allgather algorithms over word (bitmap) buffers.
//!
//! The frontier reassembly of Fig. 1 — "all processes need to perform
//! *allgather* to construct the next frontier" — is the paper's entire
//! communication phase, and each optimization of Section III is a different
//! allgather algorithm. Every variant here produces the *same* result (the
//! rank-order concatenation of the input segments; word-aligned partitions
//! make that exact) but charges different simulated time, split into the
//! Fig. 5a steps by [`CommCost`].
//!
//! Cost conventions:
//!
//! * Intra-node hops go through a shared-memory staging buffer, as in Open
//!   MPI's `sm` BTL: copy-in plus copy-out, i.e. two traversals of the
//!   payload (`shm_msg` below).
//! * Inter-node rounds are priced by the [`NetworkModel`]'s flow solver,
//!   which enforces the per-stream cap and per-node aggregate of Fig. 4.
//! * A ring round's time is its slowest hop (the ring is a synchronous
//!   pipeline), and rounds are sequential.

use nbfs_simnet::{Flow, NetworkModel};
use nbfs_topology::ProcessMap;
use nbfs_trace::CollectiveStats;
use nbfs_util::SimTime;
use serde::{Deserialize, Serialize};

use crate::profile::CommCost;

/// The allgather algorithm ladder (see crate docs for the paper mapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllgatherAlgorithm {
    /// Flat ring over all ranks — Open MPI's default for large messages,
    /// used by the paper's `Original` implementation.
    Ring,
    /// Flat recursive doubling over all ranks (Thakur & Gropp \[41\], the
    /// small/medium-message default). Falls back to ring cost when the
    /// world size is not a power of two.
    RecursiveDoubling,
    /// Leader-based three-step allgather (Mamidala et al. \[31\], Fig. 5a):
    /// gather to leader, leader ring, broadcast to children.
    LeaderBased,
    /// Shared destination buffer (`Share in_queue`, Fig. 5b): children push
    /// segments to the leader, leaders ring, children read the shared
    /// result in place — step 3 eliminated.
    SharedDest,
    /// Shared source and destination (`Share all`): leaders send straight
    /// out of the node-shared `out_queue` segments — steps 1 and 3
    /// eliminated.
    SharedBoth,
    /// Parallelized allgather (Fig. 7): every rank joins the subgroup of
    /// its node-local index; each subgroup rings its slice of the data
    /// concurrently, saturating both IB ports. Implies shared buffers.
    ParallelSubgroup,
    /// Ablation: like [`AllgatherAlgorithm::ParallelSubgroup`] but with only
    /// `k` concurrent subgroups per node (k must divide ppn).
    ParallelK(
        /// Number of concurrent subgroups.
        usize,
    ),
}

impl AllgatherAlgorithm {
    /// Figure label used in the paper's plots.
    pub fn label(self) -> String {
        match self {
            AllgatherAlgorithm::Ring => "ring (Open MPI default)".into(),
            AllgatherAlgorithm::RecursiveDoubling => "recursive doubling".into(),
            AllgatherAlgorithm::LeaderBased => "leader-based".into(),
            AllgatherAlgorithm::SharedDest => "share in_queue".into(),
            AllgatherAlgorithm::SharedBoth => "share all".into(),
            AllgatherAlgorithm::ParallelSubgroup => "parallel allgather".into(),
            AllgatherAlgorithm::ParallelK(k) => format!("parallel allgather (k={k})"),
        }
    }
}

/// Result of an allgather: the reassembled words plus the charged cost.
#[derive(Clone, Debug, PartialEq)]
pub struct AllgatherOutcome {
    /// Concatenation of all ranks' segments in rank order.
    pub words: Vec<u64>,
    /// Simulated time, split into the Fig. 5a steps.
    pub cost: CommCost,
}

/// Effective payload traversals per intra-node hop: Open MPI's `sm` BTL
/// copies into and out of a staging buffer, but pipelines the two copies
/// over chunks, so a hop costs ~1.5 traversals rather than 2.
const SHM_PIPELINE_TRAVERSALS: f64 = 1.5;

/// Intra-node message time through an `sm`-style staging buffer:
/// pipelined copy-in + copy-out of `bytes`, `copiers` ranks of the node
/// doing this concurrently, sources spread over `src_sockets` sockets.
fn shm_msg(net: &NetworkModel, bytes: u64, copiers: usize, src_sockets: usize) -> SimTime {
    let effective = (bytes as f64 * SHM_PIPELINE_TRAVERSALS) as u64;
    net.shm_copy_time(effective, copiers, src_sockets)
}

/// Performs the allgather: returns the concatenated words and the cost of
/// moving them with `algo` on the modelled machine.
///
/// `parts[i]` is rank `i`'s segment (its slice of `out_queue` in Fig. 1);
/// segments may have different lengths (the final partition block is
/// usually shorter).
///
/// ```
/// use nbfs_comm::allgather::{allgather_words, AllgatherAlgorithm};
/// use nbfs_simnet::NetworkModel;
/// use nbfs_topology::{presets, PlacementPolicy, ProcessMap};
///
/// let machine = presets::xeon_x7550_cluster(2);
/// let pmap = ProcessMap::new(&machine, 8, PlacementPolicy::BindToSocket);
/// let net = NetworkModel::new(&machine);
/// let parts: Vec<Vec<u64>> = (0..16).map(|r| vec![r as u64]).collect();
/// let out = allgather_words(&parts, &pmap, &net, AllgatherAlgorithm::ParallelSubgroup);
/// assert_eq!(out.words, (0..16).collect::<Vec<u64>>());
/// assert!(out.cost.total().as_secs() > 0.0);
/// ```
pub fn allgather_words(
    parts: &[Vec<u64>],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
) -> AllgatherOutcome {
    assert_eq!(parts.len(), pmap.world_size(), "need one segment per rank");
    let words: Vec<u64> = parts.iter().flat_map(|p| p.iter().copied()).collect();
    let cost = allgather_cost(parts, pmap, net, algo);
    AllgatherOutcome { words, cost }
}

/// In-place variant of [`allgather_words`]: concatenates the segments into
/// `dst` (which must hold exactly the total word count) and returns only the
/// cost. The engine calls this every bottom-up level with persistent
/// buffers — the receiving bitmap's own words — so the staging path does no
/// per-level allocation.
pub fn allgather_words_into(
    dst: &mut [u64],
    parts: &[&[u64]],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
) -> CommCost {
    assert_eq!(parts.len(), pmap.world_size(), "need one segment per rank");
    let total: usize = parts.iter().map(|p| p.len()).sum();
    assert_eq!(
        dst.len(),
        total,
        "dst must hold exactly the concatenated segments"
    );
    // Per-rank byte sizes for the cost model: one small allocation, kept
    // out of the copy path below so the hot region stays allocation-free.
    let bytes: Vec<u64> = parts.iter().map(|p| p.len() as u64 * 8).collect();
    // nbfs-analysis: hot-path
    // The allgather level loop: every bottom-up level concatenates all
    // ranks' out_queue segments into the receiving bitmap's own words.
    // Persistent destination, caller-owned sources, no heap (NBFS004).
    let mut at = 0usize;
    for p in parts {
        dst[at..at + p.len()].copy_from_slice(p);
        at += p.len();
    }
    // nbfs-analysis: end-hot-path
    allgather_cost_bytes(&bytes, pmap, net, algo)
}

/// Cost-only variant of [`allgather_words`].
pub fn allgather_cost(
    parts: &[Vec<u64>],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
) -> CommCost {
    let bytes: Vec<u64> = parts.iter().map(|p| p.len() as u64 * 8).collect();
    allgather_cost_bytes(&bytes, pmap, net, algo)
}

/// Cost of allgathering segments of the given byte sizes (one per rank)
/// without materializing them — used for secondary payloads like
/// `in_queue_summary`, whose sub-word segment boundaries make a literal
/// word-concatenation awkward but whose *cost* is exactly a smaller
/// allgather (the paper: "the size of in_queue is 64 times of
/// in_queue_summary").
pub fn allgather_cost_bytes(
    bytes: &[u64],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
) -> CommCost {
    assert_eq!(bytes.len(), pmap.world_size(), "one size per rank");
    match algo {
        AllgatherAlgorithm::Ring => ring_cost(bytes, pmap, net),
        AllgatherAlgorithm::RecursiveDoubling => {
            if pmap.world_size().is_power_of_two() {
                recursive_doubling_cost(bytes, pmap, net)
            } else {
                ring_cost(bytes, pmap, net)
            }
        }
        AllgatherAlgorithm::LeaderBased => hierarchical_cost(bytes, pmap, net, true, true),
        AllgatherAlgorithm::SharedDest => hierarchical_cost(bytes, pmap, net, true, false),
        AllgatherAlgorithm::SharedBoth => hierarchical_cost(bytes, pmap, net, false, false),
        AllgatherAlgorithm::ParallelSubgroup => parallel_cost(bytes, pmap, net, pmap.ppn()),
        AllgatherAlgorithm::ParallelK(k) => parallel_cost(bytes, pmap, net, k),
    }
}

/// Volume tally of an allgather without pricing it: rounds, nonzero wire
/// flows, wire bytes and shared-memory bytes, mirroring the round
/// structure of [`allgather_cost_bytes`] step for step. The run-event
/// layer (`nbfs-trace`) records these per collective; keeping the counting
/// separate from the costing guarantees observability can never perturb a
/// simulated time.
pub fn allgather_stats_bytes(
    bytes: &[u64],
    pmap: &ProcessMap,
    algo: AllgatherAlgorithm,
) -> CollectiveStats {
    assert_eq!(bytes.len(), pmap.world_size(), "one size per rank");
    let mut stats = match algo {
        AllgatherAlgorithm::Ring => ring_stats(bytes, pmap),
        AllgatherAlgorithm::RecursiveDoubling => {
            if pmap.world_size().is_power_of_two() {
                recursive_doubling_stats(bytes, pmap)
            } else {
                ring_stats(bytes, pmap)
            }
        }
        AllgatherAlgorithm::LeaderBased => hierarchical_stats(bytes, pmap, true, true),
        AllgatherAlgorithm::SharedDest => hierarchical_stats(bytes, pmap, true, false),
        AllgatherAlgorithm::SharedBoth => hierarchical_stats(bytes, pmap, false, false),
        AllgatherAlgorithm::ParallelSubgroup => parallel_stats(bytes, pmap, pmap.ppn()),
        AllgatherAlgorithm::ParallelK(k) => parallel_stats(bytes, pmap, k),
    };
    // `bytes` is whatever the caller is really exchanging; without a codec
    // the raw volume *is* the wire volume. The codec layer overrides
    // `raw_bytes` with the uncompressed walk (`codec::allgather_codec_stats`).
    stats.raw_bytes = stats.wire_bytes;
    stats
}

/// Fault-layer twin of the cost/stats walks: resolves `plan` against this
/// allgather's transfer schedule (`fault::allgather_edges`), charging
/// retransmit + backoff penalties against the supplied cost sample.
/// `kind` distinguishes the frontier-word and summary allgathers in the
/// records.
pub fn inject_allgather_faults(
    plan: &crate::fault::FaultPlan,
    level: usize,
    kind: nbfs_trace::CollectiveKind,
    pmap: &ProcessMap,
    algo: AllgatherAlgorithm,
    cost: &CommCost,
    stats: &CollectiveStats,
) -> crate::fault::FaultAdjustment {
    crate::fault::inject_collective(
        plan,
        level,
        kind,
        &crate::fault::allgather_edges(pmap, algo),
        cost,
        stats,
    )
}

/// Counting twin of [`ring_cost`].
fn ring_stats(bytes: &[u64], pmap: &ProcessMap) -> CollectiveStats {
    let np = bytes.len();
    if np <= 1 {
        return CollectiveStats::ZERO;
    }
    let mut s = CollectiveStats {
        rounds: (np - 1) as u64,
        ..CollectiveStats::ZERO
    };
    for r in 0..np - 1 {
        for i in 0..np {
            let dst = (i + 1) % np;
            let chunk = bytes[(i + np - r) % np];
            if chunk == 0 {
                continue;
            }
            if pmap.node_of(i) == pmap.node_of(dst) {
                s.shm_bytes += chunk;
            } else {
                s.flows += 1;
                s.wire_bytes += chunk;
            }
        }
    }
    s
}

/// Counting twin of [`recursive_doubling_cost`].
fn recursive_doubling_stats(bytes: &[u64], pmap: &ProcessMap) -> CollectiveStats {
    let np = bytes.len();
    debug_assert!(np.is_power_of_two());
    if np <= 1 {
        return CollectiveStats::ZERO;
    }
    let mut prefix = vec![0u64; np + 1];
    for i in 0..np {
        prefix[i + 1] = prefix[i] + bytes[i];
    }
    let held = |i: usize, k: u32| -> u64 {
        let block = 1usize << k;
        let start = i & !(block - 1);
        prefix[start + block] - prefix[start]
    };
    let rounds = np.trailing_zeros();
    let mut s = CollectiveStats {
        rounds: u64::from(rounds),
        ..CollectiveStats::ZERO
    };
    for k in 0..rounds {
        for i in 0..np {
            let partner = i ^ (1usize << k);
            if partner < i {
                continue; // count each pair once
            }
            let pair_bytes = held(i, k) + held(partner, k);
            if pmap.node_of(i) == pmap.node_of(partner) {
                s.shm_bytes += pair_bytes;
            } else {
                if held(i, k) > 0 {
                    s.flows += 1;
                }
                if held(partner, k) > 0 {
                    s.flows += 1;
                }
                s.wire_bytes += pair_bytes;
            }
        }
    }
    s
}

/// Counting twin of [`hierarchical_cost`].
fn hierarchical_stats(
    bytes: &[u64],
    pmap: &ProcessMap,
    gather: bool,
    bcast: bool,
) -> CollectiveStats {
    let np = bytes.len();
    let nodes = pmap.nodes();
    let ppn = pmap.ppn();
    let total: u64 = bytes.iter().sum();
    let mut s = CollectiveStats::ZERO;
    if gather && ppn > 1 {
        s.rounds += 1;
        s.shm_bytes += (0..np)
            .filter(|&i| !pmap.is_leader(i))
            .map(|i| bytes[i])
            .sum::<u64>();
    }
    if nodes > 1 {
        // Every ring round moves each node block exactly once.
        let node_block = |n: usize| -> u64 { (n * ppn..(n + 1) * ppn).map(|i| bytes[i]).sum() };
        let nonzero_blocks = (0..nodes).filter(|&n| node_block(n) > 0).count() as u64;
        s.rounds += (nodes - 1) as u64;
        s.flows += (nodes - 1) as u64 * nonzero_blocks;
        s.wire_bytes += (nodes - 1) as u64 * total;
    }
    if bcast && ppn > 1 {
        // Each child copies the full result out of the leader's buffer.
        s.rounds += 1;
        s.shm_bytes += nodes as u64 * (ppn - 1) as u64 * total;
    }
    s
}

/// Counting twin of [`parallel_cost`].
fn parallel_stats(bytes: &[u64], pmap: &ProcessMap, k: usize) -> CollectiveStats {
    let nodes = pmap.nodes();
    let ppn = pmap.ppn();
    assert!(k >= 1 && k <= ppn && ppn % k == 0, "k must divide ppn");
    if nodes <= 1 {
        return CollectiveStats::ZERO;
    }
    let slice_bytes = |n: usize, j: usize| -> u64 {
        (0..ppn)
            .filter(|li| li % k == j)
            .map(|li| bytes[n * ppn + li])
            .sum()
    };
    let total: u64 = bytes.iter().sum();
    let nonzero_slices: u64 = (0..nodes)
        .flat_map(|n| (0..k).map(move |j| (n, j)))
        .filter(|&(n, j)| slice_bytes(n, j) > 0)
        .count() as u64;
    CollectiveStats {
        rounds: (nodes - 1) as u64,
        flows: (nodes - 1) as u64 * nonzero_slices,
        wire_bytes: (nodes - 1) as u64 * total,
        shm_bytes: 0,
        ..CollectiveStats::ZERO
    }
}

/// Flat ring over all ranks: `np - 1` rounds; in round `r` rank `i`
/// forwards chunk `(i - r) mod np` to rank `(i + 1) mod np`.
fn ring_cost(bytes: &[u64], pmap: &ProcessMap, net: &NetworkModel) -> CommCost {
    let np = bytes.len();
    if np <= 1 {
        return CommCost::ZERO;
    }
    let sockets = net.machine().sockets_per_node;
    let mut inter = SimTime::ZERO;
    let mut intra = SimTime::ZERO;
    for r in 0..np - 1 {
        let mut flows: Vec<Flow> = Vec::new();
        let mut shm_copiers = vec![0usize; pmap.nodes()];
        let mut shm_max_bytes = vec![0u64; pmap.nodes()];
        for i in 0..np {
            let dst = (i + 1) % np;
            let chunk = bytes[(i + np - r) % np];
            let (sn, dn) = (pmap.node_of(i), pmap.node_of(dst));
            if sn == dn {
                shm_copiers[sn] += 1;
                shm_max_bytes[sn] = shm_max_bytes[sn].max(chunk);
            } else {
                flows.push(Flow::new(sn, dn, chunk));
            }
        }
        let wire = net.round_time(&flows);
        let shm = (0..pmap.nodes())
            .map(|n| {
                shm_msg(
                    net,
                    shm_max_bytes[n],
                    shm_copiers[n].max(1),
                    shm_copiers[n].clamp(1, sockets),
                )
            })
            .fold(SimTime::ZERO, SimTime::max);
        // A ring round is a synchronous pipeline stage: the slowest hop
        // gates it. Attribute the whole round to whichever medium gated it.
        if wire >= shm {
            inter += wire;
        } else {
            intra += shm;
        }
    }
    CommCost {
        intra_gather: intra,
        inter,
        intra_bcast: SimTime::ZERO,
    }
}

/// Flat recursive doubling: `log2(np)` rounds; in round `k` rank `i`
/// exchanges everything it holds with rank `i ^ 2^k`.
fn recursive_doubling_cost(bytes: &[u64], pmap: &ProcessMap, net: &NetworkModel) -> CommCost {
    let np = bytes.len();
    debug_assert!(np.is_power_of_two());
    if np <= 1 {
        return CommCost::ZERO;
    }
    let sockets = net.machine().sockets_per_node;
    // Prefix sums for block-aligned held-byte queries.
    let mut prefix = vec![0u64; np + 1];
    for i in 0..np {
        prefix[i + 1] = prefix[i] + bytes[i];
    }
    let held = |i: usize, k: u32| -> u64 {
        let block = 1usize << k;
        let start = i & !(block - 1);
        prefix[start + block] - prefix[start]
    };

    let mut inter = SimTime::ZERO;
    let mut intra = SimTime::ZERO;
    let rounds = np.trailing_zeros();
    for k in 0..rounds {
        let mut flows: Vec<Flow> = Vec::new();
        let mut any_intra = false;
        let mut max_held = 0u64;
        for i in 0..np {
            let partner = i ^ (1usize << k);
            if partner < i {
                continue; // count each pair once
            }
            let h = held(i, k);
            let (a, b) = (pmap.node_of(i), pmap.node_of(partner));
            if a == b {
                any_intra = true;
                max_held = max_held.max(h);
            } else {
                // Exchange: both directions on the wire.
                flows.push(Flow::new(a, b, h));
                flows.push(Flow::new(b, a, held(partner, k)));
            }
        }
        if any_intra {
            // Every rank writes its held bytes and reads its partner's —
            // ppn concurrent copiers per node.
            intra += shm_msg(net, max_held, pmap.ppn(), pmap.ppn().clamp(1, sockets));
        }
        if !flows.is_empty() {
            inter += net.round_time(&flows);
        }
    }
    CommCost {
        intra_gather: intra,
        inter,
        intra_bcast: SimTime::ZERO,
    }
}

/// The three-step hierarchy of Fig. 5a/5b. `gather`/`bcast` toggle steps 1
/// and 3; the inter-node step is a ring over node blocks.
fn hierarchical_cost(
    bytes: &[u64],
    pmap: &ProcessMap,
    net: &NetworkModel,
    gather: bool,
    bcast: bool,
) -> CommCost {
    let np = bytes.len();
    let nodes = pmap.nodes();
    let ppn = pmap.ppn();
    let sockets = net.machine().sockets_per_node;
    let total: u64 = bytes.iter().sum();
    let node_block = |n: usize| -> u64 { (n * ppn..(n + 1) * ppn).map(|i| bytes[i]).sum() };

    // Step 1: children push their segments into the leader's staging.
    let intra_gather = if gather && ppn > 1 {
        let max_child = (0..np)
            .filter(|&i| !pmap.is_leader(i))
            .map(|i| bytes[i])
            .max()
            .unwrap_or(0);
        shm_msg(net, max_child, ppn - 1, (ppn - 1).clamp(1, sockets))
    } else {
        SimTime::ZERO
    };

    // Step 2: ring over the leaders, chunk = one node's block.
    let mut inter = SimTime::ZERO;
    if nodes > 1 {
        for r in 0..nodes - 1 {
            let flows: Vec<Flow> = (0..nodes)
                .map(|n| Flow::new(n, (n + 1) % nodes, node_block((n + nodes - r) % nodes)))
                .collect();
            inter += net.round_time(&flows);
        }
    }

    // Step 3: every child copies the full result from the leader's buffer,
    // all draining one socket's memory — the Fig. 6 bottleneck.
    let intra_bcast = if bcast && ppn > 1 {
        shm_msg(net, total, ppn - 1, 1)
    } else {
        SimTime::ZERO
    };

    CommCost {
        intra_gather,
        inter,
        intra_bcast,
    }
}

/// The parallelized allgather of Fig. 7: `k` subgroups (one per node-local
/// index class) each ring their slice concurrently. Shared buffers are
/// implied, so there are no intra-node steps.
fn parallel_cost(bytes: &[u64], pmap: &ProcessMap, net: &NetworkModel, k: usize) -> CommCost {
    let nodes = pmap.nodes();
    let ppn = pmap.ppn();
    assert!(k >= 1 && k <= ppn && ppn % k == 0, "k must divide ppn");
    if nodes <= 1 {
        return CommCost::ZERO;
    }
    // Subgroup j on node n forwards the slice of node (n - r)'s block that
    // belongs to local indices {j, j + k, j + 2k, ...}.
    let slice_bytes = |n: usize, j: usize| -> u64 {
        (0..ppn)
            .filter(|li| li % k == j)
            .map(|li| bytes[n * ppn + li])
            .sum()
    };
    let mut inter = SimTime::ZERO;
    for r in 0..nodes - 1 {
        let mut flows = Vec::with_capacity(nodes * k);
        for n in 0..nodes {
            let origin = (n + nodes - r) % nodes;
            for j in 0..k {
                flows.push(Flow::new(n, (n + 1) % nodes, slice_bytes(origin, j)));
            }
        }
        inter += net.round_time(&flows);
    }
    CommCost::inter_only(inter)
}

/// Result of a ragged item allgather ([`allgatherv_items`]).
#[derive(Clone, Debug, PartialEq)]
pub struct AllgathervOutcome<T> {
    /// Concatenation of all ranks' items in rank order.
    pub items: Vec<T>,
    /// Simulated time.
    pub cost: CommCost,
}

/// Allgathers ragged per-rank item lists (MPI `allgatherv`). The top-down
/// phase of the replicated hybrid BFS exchanges newly discovered frontier
/// *vertex lists* this way — sized by the frontier, not by the whole
/// bitmap, which is why the paper's top-down communication stays cheap
/// while its bottom-up allgathers dominate (Fig. 11).
pub fn allgatherv_items<T: Copy>(
    lists: &[Vec<T>],
    item_bytes: usize,
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
) -> AllgathervOutcome<T> {
    assert_eq!(lists.len(), pmap.world_size(), "one list per rank");
    let items: Vec<T> = lists.iter().flat_map(|l| l.iter().copied()).collect();
    let bytes: Vec<u64> = lists
        .iter()
        .map(|l| (l.len() * item_bytes) as u64)
        .collect();
    let cost = allgather_cost_bytes(&bytes, pmap, net, algo);
    AllgathervOutcome { items, cost }
}

/// Test oracle: a *functional* flat-ring allgather that actually shuttles
/// chunks between per-rank staging buffers round by round, returning every
/// rank's final buffer. Used to prove the one-shot concatenation of
/// [`allgather_words`] matches what the distributed algorithm would build.
pub fn ring_allgather_functional(parts: &[Vec<u64>]) -> Vec<Vec<Vec<u64>>> {
    let np = parts.len();
    // have[i][c] = chunk c if rank i holds it.
    let mut have: Vec<Vec<Option<Vec<u64>>>> = (0..np)
        .map(|i| {
            (0..np)
                .map(|c| if c == i { Some(parts[c].clone()) } else { None })
                .collect()
        })
        .collect();
    for r in 0..np.saturating_sub(1) {
        let moves: Vec<(usize, usize, usize)> = (0..np)
            .map(|i| (i, (i + 1) % np, (i + np - r) % np))
            .collect();
        for (src, dst, chunk) in moves {
            let data = have[src][chunk].clone().expect("ring invariant broken");
            have[dst][chunk] = Some(data);
        }
    }
    have.into_iter()
        .map(|row| row.into_iter().map(|c| c.expect("chunk missing")).collect())
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use nbfs_topology::{presets, MachineConfig, PlacementPolicy, ProcessMap};

    fn setup(nodes: usize, ppn: usize) -> (MachineConfig, ProcessMap, NetworkModel) {
        let m = presets::xeon_x7550_cluster(nodes);
        let policy = if ppn == 8 {
            PlacementPolicy::BindToSocket
        } else {
            PlacementPolicy::Interleave
        };
        let pmap = ProcessMap::new(&m, ppn, policy);
        let net = NetworkModel::new(&m);
        (m, pmap, net)
    }

    fn equal_parts(np: usize, words_each: usize) -> Vec<Vec<u64>> {
        (0..np)
            .map(|i| (0..words_each).map(|w| (i * 1000 + w) as u64).collect())
            .collect()
    }

    #[test]
    fn all_algorithms_produce_the_same_words() {
        let (_, pmap, net) = setup(4, 8);
        let parts = equal_parts(32, 7);
        let expect: Vec<u64> = parts.iter().flatten().copied().collect();
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::RecursiveDoubling,
            AllgatherAlgorithm::LeaderBased,
            AllgatherAlgorithm::SharedDest,
            AllgatherAlgorithm::SharedBoth,
            AllgatherAlgorithm::ParallelSubgroup,
            AllgatherAlgorithm::ParallelK(2),
        ] {
            let out = allgather_words(&parts, &pmap, &net, algo);
            assert_eq!(out.words, expect, "{algo:?}");
            assert!(out.cost.total() > SimTime::ZERO, "{algo:?} must cost time");
        }
    }

    #[test]
    fn in_place_variant_matches_allocating_one() {
        let (_, pmap, net) = setup(4, 8);
        let mut parts = equal_parts(32, 7);
        parts[31].truncate(3); // ragged tail segment
        let refs: Vec<&[u64]> = parts.iter().map(|p| p.as_slice()).collect();
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::SharedBoth,
            AllgatherAlgorithm::ParallelSubgroup,
        ] {
            let out = allgather_words(&parts, &pmap, &net, algo);
            let mut dst = vec![u64::MAX; out.words.len()];
            let cost = allgather_words_into(&mut dst, &refs, &pmap, &net, algo);
            assert_eq!(dst, out.words, "{algo:?}");
            assert_eq!(cost.total(), out.cost.total(), "{algo:?}");
        }
    }

    #[test]
    fn functional_ring_matches_concatenation() {
        let parts = equal_parts(6, 3);
        let expect: Vec<u64> = parts.iter().flatten().copied().collect();
        for buf in ring_allgather_functional(&parts) {
            let flat: Vec<u64> = buf.into_iter().flatten().collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn optimization_ladder_monotonically_cheapens() {
        // Fig. 13's heart: each optimization must strictly reduce the cost
        // of a large allgather in the paper's regime.
        let (_, pmap, net) = setup(8, 8);
        // 32 MiB total across 64 ranks (scale-28-like in_queue at 8 nodes,
        // scaled down with everything else).
        let words_each = 32 * 1024 * 1024 / 8 / 64;
        let parts = equal_parts(64, words_each);
        let cost = |algo| allgather_cost(&parts, &pmap, &net, algo).total();
        let ring = cost(AllgatherAlgorithm::Ring);
        let leader = cost(AllgatherAlgorithm::LeaderBased);
        let shared = cost(AllgatherAlgorithm::SharedDest);
        let shared_all = cost(AllgatherAlgorithm::SharedBoth);
        let par = cost(AllgatherAlgorithm::ParallelSubgroup);
        assert!(
            shared < leader,
            "shared dest {shared:?} < leader {leader:?}"
        );
        assert!(shared_all < shared, "{shared_all:?} < {shared:?}");
        assert!(par < shared_all, "{par:?} < {shared_all:?}");
        // Overall reduction vs the Original ring: the paper measures 4.07x
        // on eight nodes; accept a generous band around it.
        let reduction = ring / par;
        assert!(
            (2.5..=8.0).contains(&reduction),
            "total comm reduction {reduction} outside the Fig. 13 band"
        );
    }

    #[test]
    fn leader_based_bcast_dominates_at_scale() {
        // Fig. 6: intra-node steps of the leader-based allgather outweigh
        // the inter-node exchange for large payloads.
        let (_, pmap, net) = setup(16, 8);
        let words_each = 64 * 1024 * 1024 / 8 / 128; // 64 MiB total
        let parts = equal_parts(128, words_each);
        let c = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::LeaderBased);
        assert!(
            c.intra() > c.inter,
            "intra {:?} must exceed inter {:?}",
            c.intra(),
            c.inter
        );
        assert!(
            c.intra_bcast > c.intra_gather,
            "broadcast is the heavy step"
        );
    }

    #[test]
    fn ppn8_ring_costs_more_than_ppn1_ring() {
        // Fig. 12: spawning 8 processes per socket makes the Original
        // allgather ~2.3x more expensive than one process per node.
        let (_, pmap8, net) = setup(8, 8);
        let (_, pmap1, _) = setup(8, 1);
        let total_words = 32 * 1024 * 1024 / 8;
        let parts8 = equal_parts(64, total_words / 64);
        let parts1 = equal_parts(8, total_words / 8);
        let c8 = allgather_cost(&parts8, &pmap8, &net, AllgatherAlgorithm::Ring).total();
        let c1 = allgather_cost(&parts1, &pmap1, &net, AllgatherAlgorithm::Ring).total();
        let ratio = c8 / c1;
        assert!(
            (1.5..=3.5).contains(&ratio),
            "ppn=8/ppn=1 comm ratio {ratio} outside the Fig. 12 band (paper: 2.34)"
        );
    }

    #[test]
    fn parallel_subgroups_beat_single_leader_stream() {
        let (_, pmap, net) = setup(8, 8);
        let parts = equal_parts(64, 64 * 1024);
        let one = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::SharedBoth).total();
        let par = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::ParallelSubgroup).total();
        let speedup = one / par;
        assert!(
            (1.3..=2.5).contains(&speedup),
            "parallel allgather speedup {speedup} outside the Fig. 4-derived band"
        );
    }

    #[test]
    fn parallel_k_interpolates() {
        let (_, pmap, net) = setup(8, 8);
        let parts = equal_parts(64, 64 * 1024);
        let k1 = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::ParallelK(1)).total();
        let k2 = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::ParallelK(2)).total();
        let k4 = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::ParallelK(4)).total();
        let k8 = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::ParallelK(8)).total();
        assert!(
            k1 >= k2 && k2 >= k4 && k4 >= k8,
            "{k1:?} {k2:?} {k4:?} {k8:?}"
        );
    }

    #[test]
    fn single_node_has_no_wire_cost() {
        let (_, pmap, net) = setup(1, 8);
        let parts = equal_parts(8, 1024);
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::LeaderBased,
            AllgatherAlgorithm::SharedBoth,
            AllgatherAlgorithm::ParallelSubgroup,
        ] {
            let c = allgather_cost(&parts, &pmap, &net, algo);
            assert_eq!(c.inter, SimTime::ZERO, "{algo:?}");
        }
    }

    #[test]
    fn unequal_tail_segment_supported() {
        let (_, pmap, net) = setup(2, 8);
        let mut parts = equal_parts(16, 100);
        parts[15].truncate(37); // shorter final block
        let out = allgather_words(&parts, &pmap, &net, AllgatherAlgorithm::Ring);
        assert_eq!(out.words.len(), 15 * 100 + 37);
    }

    #[test]
    #[should_panic(expected = "one segment per rank")]
    fn wrong_part_count_rejected() {
        let (_, pmap, net) = setup(2, 8);
        let parts = equal_parts(3, 10);
        allgather_words(&parts, &pmap, &net, AllgatherAlgorithm::Ring);
    }

    #[test]
    fn stats_mirror_the_round_structure() {
        let (_, pmap, net) = setup(4, 8);
        let parts = equal_parts(32, 7);
        let bytes: Vec<u64> = parts.iter().map(|p| p.len() as u64 * 8).collect();
        let total: u64 = bytes.iter().sum();
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::RecursiveDoubling,
            AllgatherAlgorithm::LeaderBased,
            AllgatherAlgorithm::SharedDest,
            AllgatherAlgorithm::SharedBoth,
            AllgatherAlgorithm::ParallelSubgroup,
            AllgatherAlgorithm::ParallelK(2),
        ] {
            let s = allgather_stats_bytes(&bytes, &pmap, algo);
            assert!(s.rounds > 0, "{algo:?}");
            assert!(s.wire_bytes > 0, "{algo:?} crosses nodes");
            // The stats fn must not perturb or depend on the cost fn.
            let c = allgather_cost_bytes(&bytes, &pmap, &net, algo);
            assert!(c.total() > SimTime::ZERO, "{algo:?}");
        }
        // Ring: np-1 rounds; every chunk crosses the wire or shared memory.
        let ring = allgather_stats_bytes(&bytes, &pmap, AllgatherAlgorithm::Ring);
        assert_eq!(ring.rounds, 31);
        assert_eq!(ring.wire_bytes + ring.shm_bytes, 31 * total);
        // Parallel subgroups: nodes-1 rounds, all slices nonzero.
        let par = allgather_stats_bytes(&bytes, &pmap, AllgatherAlgorithm::ParallelSubgroup);
        assert_eq!(par.rounds, 3);
        assert_eq!(par.flows, 3 * 32);
        assert_eq!(par.wire_bytes, 3 * total);
        assert_eq!(par.shm_bytes, 0);
    }

    #[test]
    fn single_node_stats_have_no_wire_volume() {
        let (_, pmap, _) = setup(1, 8);
        let bytes = vec![64u64; 8];
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::LeaderBased,
            AllgatherAlgorithm::ParallelSubgroup,
        ] {
            let s = allgather_stats_bytes(&bytes, &pmap, algo);
            assert_eq!(s.wire_bytes, 0, "{algo:?}");
            assert_eq!(s.flows, 0, "{algo:?}");
        }
    }

    #[test]
    fn recursive_doubling_cheaper_than_ring_for_small_messages() {
        // Thakur & Gropp's rule: fewer rounds win when latency dominates.
        let (_, pmap, net) = setup(8, 8);
        let parts = equal_parts(64, 2); // 16 bytes each
        let rd = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::RecursiveDoubling).total();
        let ring = allgather_cost(&parts, &pmap, &net, AllgatherAlgorithm::Ring).total();
        assert!(rd < ring, "rd {rd:?} vs ring {ring:?}");
    }
}
