//! Central message-tag registry (NBFS007 *tag hygiene*).
//!
//! Every point-to-point or collective tag in the workspace must be named
//! here; `nbfs-analysis` flags raw integer literals at tag positions
//! (NBFS007) and cross-checks that every named tag used with a `send` has
//! a matching receive/consumer somewhere in the tree (NBFS008). Central
//! registration makes reuse or collision of a literal a reviewable event
//! instead of a silent hang at scale.
//!
//! # Value discipline
//!
//! Ordinary tags are spaced [`BLOCK`] apart. The ring allgather derives one
//! sub-tag per round via [`ring_round`], so two base tags closer than the
//! world size could alias; a 2^16 stride keeps every realistic world
//! (ranks < 65 536) collision-free. Two values are special and must never
//! change:
//!
//! * [`TOMBSTONE`] (`u64::MAX`) — runtime control traffic announcing a
//!   dead rank. The runtime rejects it on the user [`send`] surface.
//! * [`COLLECTIVE_SITE`] (`0`) — the tag field of whole-rank
//!   [`FaultSite`]s. Fault fates hash the site (including this field), so
//!   renumbering it would silently reshuffle every seeded chaos schedule.
//!
//! [`send`]: crate::runtime::RankCtx::send
//! [`FaultSite`]: crate::fault::FaultSite

/// A message tag. Alias so registry entries read as typed declarations.
pub type Tag = u64;

/// Spacing between registered base tags; bounds the round window a ring
/// collective may derive from one base via [`ring_round`].
pub const BLOCK: Tag = 1 << 16;

/// Reserved control tag for crash tombstones (see module docs).
pub const TOMBSTONE: Tag = u64::MAX;

/// Tag field of whole-rank fault sites; not a message tag (see module docs).
pub const COLLECTIVE_SITE: Tag = 0;

/// Dense frontier words exchanged by the runtime-agreement suite.
pub const FRONTIER_WORDS: Tag = BLOCK;

/// Ragged per-rank frontier chunks exchanged by the runtime-agreement suite.
pub const FRONTIER_RAGGED: Tag = 2 * BLOCK;

/// Frontier exchange of the `spmd_runtime` example.
pub const DEMO_FRONTIER: Tag = 3 * BLOCK;

/// Liveness ring of the CLI chaos harness.
pub const CHAOS_RING: Tag = 4 * BLOCK;

/// Derives the per-round sub-tag a ring collective uses for round `round`
/// of a collective rooted at `base`. Rounds stay inside the base's
/// [`BLOCK`] window for any world below 2^16 ranks.
#[must_use]
pub fn ring_round(base: Tag, round: usize) -> Tag {
    base.wrapping_add(round as Tag)
}

/// Tags owned by unit/integration tests. Kept in their own namespace (and
/// their own value range, starting at `64 * BLOCK`) so production tags and
/// test probes can never collide.
pub mod testing {
    use super::{Tag, BLOCK};

    /// Ring message-passing smoke test.
    pub const RING_PASS: Tag = 64 * BLOCK;
    /// Out-of-order stashing test, first (later-received) tag.
    pub const STASH_LOW: Tag = 65 * BLOCK;
    /// Out-of-order stashing test, second (earlier-received) tag.
    pub const STASH_HIGH: Tag = 66 * BLOCK;
    /// Root-gather smoke test.
    pub const GATHER_DEMO: Tag = 67 * BLOCK;
    /// Broadcast smoke test.
    pub const BCAST_DEMO: Tag = 68 * BLOCK;
    /// Ragged allgather smoke test.
    pub const ALLGATHER_RAGGED: Tag = 69 * BLOCK;
    /// Single-rank-world allgather test.
    pub const ALLGATHER_SOLO: Tag = 70 * BLOCK;
    /// Negative-path probe: send aimed outside the world.
    pub const OUT_OF_WORLD: Tag = 71 * BLOCK;
    /// Traffic-counter ring allgather.
    pub const TRAFFIC_PROBE: Tag = 72 * BLOCK;
    /// Drop/duplicate/reorder fault-recovery allgathers.
    pub const FAULT_PROBE: Tag = 73 * BLOCK;
    /// Retry-budget exhaustion probe (delivery impossible by design).
    pub const RETRY_PROBE: Tag = 74 * BLOCK;
    /// Crash-degradation ring.
    pub const CRASH_RING: Tag = 75 * BLOCK;
    /// Fault-log determinism ring allgather.
    pub const DETERMINISM_RING: Tag = 76 * BLOCK;
    /// Property-test ring allgather under random fault plans.
    pub const FAULT_RING: Tag = 77 * BLOCK;
    /// Property-test crash-propagation ring.
    pub const CRASH_PAIR: Tag = 78 * BLOCK;
}

/// Every registered tag, for uniqueness/spacing audits.
pub const REGISTRY: &[(&str, Tag)] = &[
    ("TOMBSTONE", TOMBSTONE),
    ("COLLECTIVE_SITE", COLLECTIVE_SITE),
    ("FRONTIER_WORDS", FRONTIER_WORDS),
    ("FRONTIER_RAGGED", FRONTIER_RAGGED),
    ("DEMO_FRONTIER", DEMO_FRONTIER),
    ("CHAOS_RING", CHAOS_RING),
    ("testing::RING_PASS", testing::RING_PASS),
    ("testing::STASH_LOW", testing::STASH_LOW),
    ("testing::STASH_HIGH", testing::STASH_HIGH),
    ("testing::GATHER_DEMO", testing::GATHER_DEMO),
    ("testing::BCAST_DEMO", testing::BCAST_DEMO),
    ("testing::ALLGATHER_RAGGED", testing::ALLGATHER_RAGGED),
    ("testing::ALLGATHER_SOLO", testing::ALLGATHER_SOLO),
    ("testing::OUT_OF_WORLD", testing::OUT_OF_WORLD),
    ("testing::TRAFFIC_PROBE", testing::TRAFFIC_PROBE),
    ("testing::FAULT_PROBE", testing::FAULT_PROBE),
    ("testing::RETRY_PROBE", testing::RETRY_PROBE),
    ("testing::CRASH_RING", testing::CRASH_RING),
    ("testing::DETERMINISM_RING", testing::DETERMINISM_RING),
    ("testing::FAULT_RING", testing::FAULT_RING),
    ("testing::CRASH_PAIR", testing::CRASH_PAIR),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_values_are_unique() {
        for (i, (name_a, val_a)) in REGISTRY.iter().enumerate() {
            for (name_b, val_b) in &REGISTRY[i + 1..] {
                assert_ne!(val_a, val_b, "tag collision: {name_a} vs {name_b}");
            }
        }
    }

    #[test]
    fn base_tags_are_block_spaced() {
        // Every non-special pair must sit at least one ring-round window
        // apart so `ring_round` can never alias two registered tags.
        for (i, (name_a, val_a)) in REGISTRY.iter().enumerate() {
            if *val_a == TOMBSTONE {
                continue;
            }
            for (name_b, val_b) in &REGISTRY[i + 1..] {
                if *val_b == TOMBSTONE {
                    continue;
                }
                let gap = val_a.abs_diff(*val_b);
                assert!(
                    gap >= BLOCK,
                    "{name_a} and {name_b} are only {gap} apart (< BLOCK)"
                );
            }
        }
    }

    #[test]
    fn ring_round_stays_inside_the_block_window() {
        let base = testing::RING_PASS;
        for round in 0..1024usize {
            let t = ring_round(base, round);
            assert!(t >= base && t < base + BLOCK);
        }
    }

    #[test]
    fn special_values_are_pinned() {
        // Chaos determinism hashes COLLECTIVE_SITE into rank fault sites
        // and the runtime matches TOMBSTONE exactly; neither may drift.
        assert_eq!(TOMBSTONE, u64::MAX);
        assert_eq!(COLLECTIVE_SITE, 0);
    }
}
