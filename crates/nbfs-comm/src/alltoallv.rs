//! Personalized all-to-all exchange (MPI `alltoallv`).
//!
//! The top-down phase of the distributed BFS sends `(destination vertex,
//! parent)` records to the destination's owner rank, exactly like the
//! Graph500 `mpi_simple` code. Traffic is tiny compared to the bottom-up
//! allgathers (the paper's Fig. 11 shows top-down communication inside the
//! small "top-down" slice), but it must be functionally correct for the
//! BFS tree to validate.

use nbfs_simnet::{Flow, FlowRoundSummary, NetworkModel};
use nbfs_topology::ProcessMap;
use nbfs_trace::CollectiveStats;
use nbfs_util::SimTime;

use crate::profile::CommCost;

/// Result of an all-to-all exchange.
#[derive(Clone, Debug, PartialEq)]
pub struct AlltoallvOutcome<T> {
    /// `received[j]` = everything rank `j` received, in sender-rank order
    /// (deterministic).
    pub received: Vec<Vec<T>>,
    /// Charged time.
    pub cost: CommCost,
    /// Volume tally for the run-event layer (one round; wire flows are
    /// aggregated per node pair, as the cost model prices them).
    pub stats: CollectiveStats,
}

/// Exchanges `sends[i][j]` (the records rank `i` addresses to rank `j`),
/// returning per-receiver inboxes and the simulated cost.
///
/// Cost model: all pairwise transfers proceed concurrently; inter-node
/// traffic is aggregated per node pair and priced by the flow solver,
/// intra-node traffic is a shared-memory copy round. The phase ends when
/// the slower medium finishes.
pub fn alltoallv<T: Clone>(
    sends: &[Vec<Vec<T>>],
    item_bytes: usize,
    pmap: &ProcessMap,
    net: &NetworkModel,
) -> AlltoallvOutcome<T> {
    let np = pmap.world_size();
    assert_eq!(sends.len(), np, "need a send matrix row per rank");
    for (i, row) in sends.iter().enumerate() {
        assert_eq!(row.len(), np, "rank {i}'s send row must cover all ranks");
    }

    // Functional exchange, deterministic receive order (by sender rank).
    let received: Vec<Vec<T>> = (0..np)
        .map(|j| {
            let mut inbox = Vec::new();
            for row in sends.iter() {
                inbox.extend(row[j].iter().cloned());
            }
            inbox
        })
        .collect();

    // Aggregate traffic per node pair / per node.
    let nodes = pmap.nodes();
    let mut wire = vec![vec![0u64; nodes]; nodes];
    let mut shm_bytes = vec![0u64; nodes];
    let mut shm_copiers = vec![0usize; nodes];
    for (i, row) in sends.iter().enumerate() {
        let sn = pmap.node_of(i);
        let mut sent_intra = false;
        for (j, msg) in row.iter().enumerate() {
            if msg.is_empty() {
                continue;
            }
            let dn = pmap.node_of(j);
            let bytes = (msg.len() * item_bytes) as u64;
            if sn == dn {
                shm_bytes[sn] += bytes;
                sent_intra = true;
            } else {
                wire[sn][dn] += bytes;
            }
        }
        if sent_intra {
            shm_copiers[sn] += 1;
        }
    }

    let flows: Vec<Flow> = (0..nodes)
        .flat_map(|s| (0..nodes).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d && wire[s][d] > 0)
        .map(|(s, d)| Flow::new(s, d, wire[s][d]))
        .collect();
    let t_wire = net.round_time(&flows);

    let sockets = net.machine().sockets_per_node;
    let t_shm = (0..nodes)
        .filter(|&n| shm_copiers[n] > 0)
        .map(|n| {
            let per_copier = shm_bytes[n] / shm_copiers[n] as u64;
            net.shm_copy_time(
                2 * per_copier,
                shm_copiers[n],
                shm_copiers[n].clamp(1, sockets),
            )
        })
        .fold(SimTime::ZERO, SimTime::max);

    let round = FlowRoundSummary::of(&flows);
    let stats = CollectiveStats {
        rounds: 1,
        flows: round.flows,
        wire_bytes: round.bytes,
        shm_bytes: shm_bytes.iter().sum(),
    };

    AlltoallvOutcome {
        received,
        cost: CommCost::inter_only(t_wire.max(t_shm)),
        stats,
    }
}

/// Fault-layer twin of the exchange: resolves `plan` against the node-pair
/// transfer schedule (`fault::alltoallv_edges`), charging retransmit +
/// backoff penalties against the supplied cost sample.
pub fn inject_alltoallv_faults(
    plan: &crate::fault::FaultPlan,
    level: usize,
    pmap: &ProcessMap,
    cost: &CommCost,
    stats: &CollectiveStats,
) -> crate::fault::FaultAdjustment {
    crate::fault::inject_collective(
        plan,
        level,
        nbfs_trace::CollectiveKind::Alltoallv,
        &crate::fault::alltoallv_edges(pmap),
        cost,
        stats,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use nbfs_topology::{presets, PlacementPolicy, ProcessMap};

    fn setup(nodes: usize, ppn: usize) -> (ProcessMap, NetworkModel) {
        let m = presets::xeon_x7550_cluster(nodes);
        let policy = if ppn > 1 {
            PlacementPolicy::BindToSocket
        } else {
            PlacementPolicy::Interleave
        };
        (ProcessMap::new(&m, ppn, policy), NetworkModel::new(&m))
    }

    #[test]
    fn exchange_routes_everything_in_sender_order() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        // Rank i sends the pair (i, j) to rank j.
        let sends: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| (0..np).map(|j| vec![(i as u32, j as u32)]).collect())
            .collect();
        let out = alltoallv(&sends, 8, &pmap, &net);
        for (j, inbox) in out.received.iter().enumerate() {
            let expect: Vec<(u32, u32)> = (0..np).map(|i| (i as u32, j as u32)).collect();
            assert_eq!(inbox, &expect, "receiver {j}");
        }
        assert!(out.cost.total() > SimTime::ZERO);
    }

    #[test]
    fn empty_exchange_is_cheap_and_empty() {
        let (pmap, net) = setup(2, 1);
        let np = pmap.world_size();
        let sends: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); np]; np];
        let out = alltoallv(&sends, 8, &pmap, &net);
        assert!(out.received.iter().all(Vec::is_empty));
        assert_eq!(out.cost.total(), SimTime::ZERO);
    }

    #[test]
    fn intra_node_only_exchange_has_no_wire_time() {
        let (pmap, net) = setup(1, 8);
        let np = pmap.world_size();
        let mut sends: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); np]; np];
        sends[0][1] = vec![1, 2, 3];
        let out = alltoallv(&sends, 1, &pmap, &net);
        assert_eq!(out.received[1], vec![1, 2, 3]);
        // Still costs shm time, but far less than any wire transfer would.
        assert!(out.cost.total() < SimTime::from_micros(100.0));
    }

    #[test]
    fn bigger_payload_costs_more() {
        let (pmap, net) = setup(4, 8);
        let np = pmap.world_size();
        let mk = |k: usize| -> Vec<Vec<Vec<u64>>> {
            (0..np)
                .map(|_| (0..np).map(|_| vec![0u64; k]).collect())
                .collect()
        };
        let small = alltoallv(&mk(10), 8, &pmap, &net).cost.total();
        let big = alltoallv(&mk(10_000), 8, &pmap, &net).cost.total();
        assert!(big > small);
    }

    #[test]
    fn stats_count_wire_and_shm_volume() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        // Rank i sends one 8-byte pair to every rank.
        let sends: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| (0..np).map(|j| vec![(i as u32, j as u32)]).collect())
            .collect();
        let out = alltoallv(&sends, 8, &pmap, &net);
        assert_eq!(out.stats.rounds, 1);
        // 2 nodes: one aggregated flow per direction.
        assert_eq!(out.stats.flows, 2);
        // Half of each rank's np pairs cross the wire, half stay local.
        let total = (np * np * 8) as u64;
        assert_eq!(out.stats.wire_bytes, total / 2);
        assert_eq!(out.stats.shm_bytes, total / 2);
    }

    #[test]
    #[should_panic(expected = "send matrix row per rank")]
    fn bad_matrix_rejected() {
        let (pmap, net) = setup(2, 1);
        let sends: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); 2]];
        alltoallv(&sends, 1, &pmap, &net);
    }
}
