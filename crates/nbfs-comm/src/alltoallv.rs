//! Personalized all-to-all exchange (MPI `alltoallv`).
//!
//! The top-down phase of the distributed BFS sends `(destination vertex,
//! parent)` records to the destination's owner rank, exactly like the
//! Graph500 `mpi_simple` code. Traffic is tiny compared to the bottom-up
//! allgathers (the paper's Fig. 11 shows top-down communication inside the
//! small "top-down" slice), but it must be functionally correct for the
//! BFS tree to validate.

use nbfs_simnet::{Flow, FlowRoundSummary, NetworkModel};
use nbfs_topology::ProcessMap;
use nbfs_trace::CollectiveStats;
use nbfs_util::SimTime;

use crate::codec::Codec;
use crate::profile::CommCost;

/// Result of an all-to-all exchange.
#[derive(Clone, Debug, PartialEq)]
pub struct AlltoallvOutcome<T> {
    /// `received[j]` = everything rank `j` received, in sender-rank order
    /// (deterministic).
    pub received: Vec<Vec<T>>,
    /// Charged time.
    pub cost: CommCost,
    /// Volume tally for the run-event layer (one round; wire flows are
    /// aggregated per node pair, as the cost model prices them).
    pub stats: CollectiveStats,
}

/// Reusable staging for [`alltoallv_into`]: the receive inboxes, the
/// node-pair wire matrix, the shared-memory tallies and the flow list.
///
/// The top-down phase runs one exchange per level; with a workspace the
/// per-level cost is clearing and refilling these buffers rather than
/// reallocating them (the same treatment the allgather staging got, via
/// `allgather_words_into`). [`AlltoallvWorkspace::default`] is empty;
/// buffers grow to the high-water mark of the run and stay there.
#[derive(Debug)]
pub struct AlltoallvWorkspace<T> {
    /// `received[j]` after an exchange = everything rank `j` received, in
    /// sender-rank order (deterministic).
    pub received: Vec<Vec<T>>,
    wire: Vec<u64>,
    shm_bytes: Vec<u64>,
    shm_copiers: Vec<usize>,
    flows: Vec<Flow>,
    /// Per-message encode buffer of the codec-aware exchange
    /// ([`alltoallv_pairs_codec_into`]); unused on the raw path.
    scratch: Vec<u8>,
}

// Manual impl: the derive would demand `T: Default`, which the contained
// `Vec`s do not actually need.
impl<T> Default for AlltoallvWorkspace<T> {
    fn default() -> Self {
        Self {
            received: Vec::new(),
            wire: Vec::new(),
            shm_bytes: Vec::new(),
            shm_copiers: Vec::new(),
            flows: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

/// Exchanges `rows[i][j]` (the records rank `i` addresses to rank `j`)
/// into `ws.received`, returning the simulated cost and volume stats.
///
/// Cost model: all pairwise transfers proceed concurrently; inter-node
/// traffic is aggregated per node pair and priced by the flow solver,
/// intra-node traffic is a shared-memory copy round. The phase ends when
/// the slower medium finishes.
pub fn alltoallv_into<T: Clone>(
    ws: &mut AlltoallvWorkspace<T>,
    rows: &[&[Vec<T>]],
    item_bytes: usize,
    pmap: &ProcessMap,
    net: &NetworkModel,
) -> (CommCost, CollectiveStats) {
    let np = pmap.world_size();
    assert_eq!(rows.len(), np, "need a send matrix row per rank");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), np, "rank {i}'s send row must cover all ranks");
    }

    // Functional exchange, deterministic receive order (by sender rank).
    ws.received.resize_with(np, Vec::new);
    for (j, inbox) in ws.received.iter_mut().enumerate() {
        inbox.clear();
        for row in rows.iter() {
            inbox.extend(row[j].iter().cloned());
        }
    }

    // Aggregate traffic per node pair / per node.
    let nodes = pmap.nodes();
    ws.wire.clear();
    ws.wire.resize(nodes * nodes, 0);
    ws.shm_bytes.clear();
    ws.shm_bytes.resize(nodes, 0);
    ws.shm_copiers.clear();
    ws.shm_copiers.resize(nodes, 0);
    for (i, row) in rows.iter().enumerate() {
        let sn = pmap.node_of(i);
        let mut sent_intra = false;
        for (j, msg) in row.iter().enumerate() {
            if msg.is_empty() {
                continue;
            }
            let dn = pmap.node_of(j);
            let bytes = (msg.len() * item_bytes) as u64;
            if sn == dn {
                ws.shm_bytes[sn] += bytes;
                sent_intra = true;
            } else {
                ws.wire[sn * nodes + dn] += bytes;
            }
        }
        if sent_intra {
            ws.shm_copiers[sn] += 1;
        }
    }

    ws.flows.clear();
    ws.flows.extend(
        (0..nodes)
            .flat_map(|s| (0..nodes).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && ws.wire[s * nodes + d] > 0)
            .map(|(s, d)| Flow::new(s, d, ws.wire[s * nodes + d])),
    );
    let t_wire = net.round_time(&ws.flows);

    let sockets = net.machine().sockets_per_node;
    let t_shm = (0..nodes)
        .filter(|&n| ws.shm_copiers[n] > 0)
        .map(|n| {
            let per_copier = ws.shm_bytes[n] / ws.shm_copiers[n] as u64;
            net.shm_copy_time(
                2 * per_copier,
                ws.shm_copiers[n],
                ws.shm_copiers[n].clamp(1, sockets),
            )
        })
        .fold(SimTime::ZERO, SimTime::max);

    let round = FlowRoundSummary::of(&ws.flows);
    let stats = CollectiveStats {
        rounds: 1,
        flows: round.flows,
        wire_bytes: round.bytes,
        shm_bytes: ws.shm_bytes.iter().sum(),
        raw_bytes: round.bytes,
    };

    (CommCost::inter_only(t_wire.max(t_shm)), stats)
}

/// One-shot form of [`alltoallv_into`]: allocates a fresh workspace and
/// returns the inboxes by value. Kept for callers outside the level loop
/// (tests, examples); the engine reuses a workspace across levels.
pub fn alltoallv<T: Clone>(
    sends: &[Vec<Vec<T>>],
    item_bytes: usize,
    pmap: &ProcessMap,
    net: &NetworkModel,
) -> AlltoallvOutcome<T> {
    let mut ws = AlltoallvWorkspace::default();
    let rows: Vec<&[Vec<T>]> = sends.iter().map(Vec::as_slice).collect();
    let (cost, stats) = alltoallv_into(&mut ws, &rows, item_bytes, pmap, net);
    AlltoallvOutcome {
        received: ws.received,
        cost,
        stats,
    }
}

/// Codec-aware form of [`alltoallv_into`] for the engine's
/// `(destination, parent)` record exchange.
///
/// Under [`Codec::Raw`] this delegates to [`alltoallv_into`] unchanged
/// (bit-for-bit, cost included). Otherwise every non-empty message is
/// really encoded into the workspace scratch buffer and really decoded
/// into the receiver's inbox — a codec defect corrupts the BFS parents
/// rather than silently discounting bytes — and the *encoded* message
/// sizes feed the node-pair wire matrix, the shared-memory tallies and
/// the flow solver. `stats.raw_bytes` carries the wire volume the same
/// exchange would have moved uncompressed.
pub fn alltoallv_pairs_codec_into(
    ws: &mut AlltoallvWorkspace<(u32, u32)>,
    rows: &[&[Vec<(u32, u32)>]],
    pmap: &ProcessMap,
    net: &NetworkModel,
    codec: Codec,
) -> (CommCost, CollectiveStats) {
    if codec.is_raw() {
        return alltoallv_into(ws, rows, 8, pmap, net);
    }
    let np = pmap.world_size();
    assert_eq!(rows.len(), np, "need a send matrix row per rank");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), np, "rank {i}'s send row must cover all ranks");
    }
    let imp = codec.implementation();

    ws.received.resize_with(np, Vec::new);
    for inbox in ws.received.iter_mut() {
        inbox.clear();
    }
    let nodes = pmap.nodes();
    ws.wire.clear();
    ws.wire.resize(nodes * nodes, 0);
    ws.shm_bytes.clear();
    ws.shm_bytes.resize(nodes, 0);
    ws.shm_copiers.clear();
    ws.shm_copiers.resize(nodes, 0);

    // Sender-major walk keeps the inbox order identical to the raw path
    // (per receiver: sender-rank order). Each message round-trips through
    // the codec; the encoded size is what the network moves.
    let mut raw_wire = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let sn = pmap.node_of(i);
        let mut sent_intra = false;
        for (j, msg) in row.iter().enumerate() {
            if msg.is_empty() {
                continue;
            }
            imp.encode_pairs(msg, &mut ws.scratch);
            let inbox = &mut ws.received[j];
            let before = inbox.len();
            imp.decode_pairs(&ws.scratch, inbox);
            assert_eq!(&inbox[before..], msg.as_slice(), "codec round trip");
            let dn = pmap.node_of(j);
            let bytes = ws.scratch.len() as u64;
            if sn == dn {
                ws.shm_bytes[sn] += bytes;
                sent_intra = true;
            } else {
                ws.wire[sn * nodes + dn] += bytes;
                raw_wire += (msg.len() * 8) as u64;
            }
        }
        if sent_intra {
            ws.shm_copiers[sn] += 1;
        }
    }

    ws.flows.clear();
    ws.flows.extend(
        (0..nodes)
            .flat_map(|s| (0..nodes).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && ws.wire[s * nodes + d] > 0)
            .map(|(s, d)| Flow::new(s, d, ws.wire[s * nodes + d])),
    );
    let t_wire = net.round_time(&ws.flows);

    let sockets = net.machine().sockets_per_node;
    let t_shm = (0..nodes)
        .filter(|&n| ws.shm_copiers[n] > 0)
        .map(|n| {
            let per_copier = ws.shm_bytes[n] / ws.shm_copiers[n] as u64;
            net.shm_copy_time(
                2 * per_copier,
                ws.shm_copiers[n],
                ws.shm_copiers[n].clamp(1, sockets),
            )
        })
        .fold(SimTime::ZERO, SimTime::max);

    let round = FlowRoundSummary::of(&ws.flows);
    let stats = CollectiveStats {
        rounds: 1,
        flows: round.flows,
        wire_bytes: round.bytes,
        shm_bytes: ws.shm_bytes.iter().sum(),
        raw_bytes: raw_wire,
    };

    (CommCost::inter_only(t_wire.max(t_shm)), stats)
}

/// Fault-layer twin of the exchange: resolves `plan` against the node-pair
/// transfer schedule (`fault::alltoallv_edges`), charging retransmit +
/// backoff penalties against the supplied cost sample.
pub fn inject_alltoallv_faults(
    plan: &crate::fault::FaultPlan,
    level: usize,
    pmap: &ProcessMap,
    cost: &CommCost,
    stats: &CollectiveStats,
) -> crate::fault::FaultAdjustment {
    crate::fault::inject_collective(
        plan,
        level,
        nbfs_trace::CollectiveKind::Alltoallv,
        &crate::fault::alltoallv_edges(pmap),
        cost,
        stats,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use nbfs_topology::{presets, PlacementPolicy, ProcessMap};

    fn setup(nodes: usize, ppn: usize) -> (ProcessMap, NetworkModel) {
        let m = presets::xeon_x7550_cluster(nodes);
        let policy = if ppn > 1 {
            PlacementPolicy::BindToSocket
        } else {
            PlacementPolicy::Interleave
        };
        (ProcessMap::new(&m, ppn, policy), NetworkModel::new(&m))
    }

    #[test]
    fn exchange_routes_everything_in_sender_order() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        // Rank i sends the pair (i, j) to rank j.
        let sends: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| (0..np).map(|j| vec![(i as u32, j as u32)]).collect())
            .collect();
        let out = alltoallv(&sends, 8, &pmap, &net);
        for (j, inbox) in out.received.iter().enumerate() {
            let expect: Vec<(u32, u32)> = (0..np).map(|i| (i as u32, j as u32)).collect();
            assert_eq!(inbox, &expect, "receiver {j}");
        }
        assert!(out.cost.total() > SimTime::ZERO);
    }

    #[test]
    fn empty_exchange_is_cheap_and_empty() {
        let (pmap, net) = setup(2, 1);
        let np = pmap.world_size();
        let sends: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); np]; np];
        let out = alltoallv(&sends, 8, &pmap, &net);
        assert!(out.received.iter().all(Vec::is_empty));
        assert_eq!(out.cost.total(), SimTime::ZERO);
    }

    #[test]
    fn intra_node_only_exchange_has_no_wire_time() {
        let (pmap, net) = setup(1, 8);
        let np = pmap.world_size();
        let mut sends: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); np]; np];
        sends[0][1] = vec![1, 2, 3];
        let out = alltoallv(&sends, 1, &pmap, &net);
        assert_eq!(out.received[1], vec![1, 2, 3]);
        // Still costs shm time, but far less than any wire transfer would.
        assert!(out.cost.total() < SimTime::from_micros(100.0));
    }

    #[test]
    fn bigger_payload_costs_more() {
        let (pmap, net) = setup(4, 8);
        let np = pmap.world_size();
        let mk = |k: usize| -> Vec<Vec<Vec<u64>>> {
            (0..np)
                .map(|_| (0..np).map(|_| vec![0u64; k]).collect())
                .collect()
        };
        let small = alltoallv(&mk(10), 8, &pmap, &net).cost.total();
        let big = alltoallv(&mk(10_000), 8, &pmap, &net).cost.total();
        assert!(big > small);
    }

    #[test]
    fn stats_count_wire_and_shm_volume() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        // Rank i sends one 8-byte pair to every rank.
        let sends: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| (0..np).map(|j| vec![(i as u32, j as u32)]).collect())
            .collect();
        let out = alltoallv(&sends, 8, &pmap, &net);
        assert_eq!(out.stats.rounds, 1);
        // 2 nodes: one aggregated flow per direction.
        assert_eq!(out.stats.flows, 2);
        // Half of each rank's np pairs cross the wire, half stay local.
        let total = (np * np * 8) as u64;
        assert_eq!(out.stats.wire_bytes, total / 2);
        assert_eq!(out.stats.shm_bytes, total / 2);
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        // Two exchanges of different shapes through one workspace must
        // produce exactly what fresh one-shot calls produce — stale
        // buffer contents may not leak into inboxes, costs or stats.
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        let mut ws: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
        let big: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| {
                (0..np)
                    .map(|j| (0..5).map(|k| (i as u32, (j * 10 + k) as u32)).collect())
                    .collect()
            })
            .collect();
        let small: Vec<Vec<Vec<(u32, u32)>>> = (0..np)
            .map(|i| {
                (0..np)
                    .map(|j| {
                        if j == 0 {
                            vec![(i as u32, 0)]
                        } else {
                            Vec::new()
                        }
                    })
                    .collect()
            })
            .collect();
        for sends in [&big, &small, &big] {
            let rows: Vec<&[Vec<(u32, u32)>]> = sends.iter().map(Vec::as_slice).collect();
            let (cost, stats) = alltoallv_into(&mut ws, &rows, 8, &pmap, &net);
            let fresh = alltoallv(sends, 8, &pmap, &net);
            assert_eq!(ws.received, fresh.received);
            assert_eq!(cost, fresh.cost);
            assert_eq!(stats, fresh.stats);
        }
    }

    #[test]
    #[should_panic(expected = "send matrix row per rank")]
    fn bad_matrix_rejected() {
        let (pmap, net) = setup(2, 1);
        let sends: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); 2]];
        alltoallv(&sends, 1, &pmap, &net);
    }

    /// Dense consecutive-destination records for the codec exchange
    /// tests: rank `i` sends `k` records to each rank.
    fn record_matrix(np: usize, k: usize) -> Vec<Vec<Vec<(u32, u32)>>> {
        (0..np)
            .map(|i| {
                (0..np)
                    .map(|j| (0..k).map(|r| ((j * k + r) as u32, i as u32)).collect())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn codec_exchange_matches_raw_inboxes() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        let sends = record_matrix(np, 7);
        let rows: Vec<&[Vec<(u32, u32)>]> = sends.iter().map(Vec::as_slice).collect();
        let mut raw_ws: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
        let (_, raw_stats) = alltoallv_into(&mut raw_ws, &rows, 8, &pmap, &net);
        for codec in Codec::ALL {
            let mut ws: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
            let (cost, stats) = alltoallv_pairs_codec_into(&mut ws, &rows, &pmap, &net, codec);
            assert_eq!(ws.received, raw_ws.received, "{codec:?} inboxes");
            assert_eq!(stats.raw_bytes, raw_stats.wire_bytes, "{codec:?} raw tally");
            assert!(
                stats.wire_bytes <= raw_stats.wire_bytes + (np * np) as u64,
                "{codec:?} wire volume beyond the tag-byte cap"
            );
            assert!(
                cost.total() > SimTime::ZERO,
                "{codec:?} moved bytes for free"
            );
        }
    }

    #[test]
    fn delta_varint_exchange_compresses_dense_records() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        let sends = record_matrix(np, 200);
        let rows: Vec<&[Vec<(u32, u32)>]> = sends.iter().map(Vec::as_slice).collect();
        let mut ws: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
        let (_, stats) =
            alltoallv_pairs_codec_into(&mut ws, &rows, &pmap, &net, Codec::DeltaVarint);
        assert!(
            stats.wire_bytes * 2 < stats.raw_bytes,
            "consecutive destinations must compress at least 2x: wire {} raw {}",
            stats.wire_bytes,
            stats.raw_bytes
        );
        // Shm hops carry the compressed payload too (sender encodes once).
        let raw_shm = alltoallv(&sends, 8, &pmap, &net).stats.shm_bytes;
        assert!(
            stats.shm_bytes < raw_shm,
            "shm must also carry encoded bytes"
        );
    }

    #[test]
    fn codec_workspace_reuse_matches_fresh() {
        let (pmap, net) = setup(2, 8);
        let np = pmap.world_size();
        let mut ws: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
        for k in [9, 2, 9] {
            let sends = record_matrix(np, k);
            let rows: Vec<&[Vec<(u32, u32)>]> = sends.iter().map(Vec::as_slice).collect();
            let (cost, stats) =
                alltoallv_pairs_codec_into(&mut ws, &rows, &pmap, &net, Codec::DeltaVarint);
            let mut fresh: AlltoallvWorkspace<(u32, u32)> = AlltoallvWorkspace::default();
            let (fcost, fstats) =
                alltoallv_pairs_codec_into(&mut fresh, &rows, &pmap, &net, Codec::DeltaVarint);
            assert_eq!(ws.received, fresh.received);
            assert_eq!(cost, fcost);
            assert_eq!(stats, fstats);
        }
    }
}
