//! Small collectives: barrier, allreduce, broadcast, gather.
//!
//! These carry control data (frontier population counts, termination
//! flags), not bitmaps, so they are latency-dominated. The hybrid switch
//! heuristic calls an allreduce every level to learn the global frontier
//! size before choosing top-down vs bottom-up.

use nbfs_simnet::{Flow, NetworkModel};
use nbfs_topology::ProcessMap;
use nbfs_trace::CollectiveStats;
use nbfs_util::SimTime;

use crate::profile::CommCost;

/// Time for a full barrier: a latency-bound binomial tree over nodes plus
/// an intra-node flag round.
pub fn barrier_cost(pmap: &ProcessMap, net: &NetworkModel) -> SimTime {
    let node_rounds = (pmap.nodes().max(1) as f64).log2().ceil();
    let wire = SimTime::from_secs(net.machine().nic.latency_s * 2.0 * node_rounds);
    // Intra-node flag propagation through shared memory.
    let shm = SimTime::from_secs(if pmap.ppn() > 1 {
        net.machine().sw_overhead_s
    } else {
        0.0
    });
    wire + shm
}

/// Result of an allreduce.
#[derive(Clone, Debug, PartialEq)]
pub struct AllreduceOutcome {
    /// The reduced value, identical on every rank.
    pub value: u64,
    /// Charged time.
    pub cost: CommCost,
    /// Volume tally for the run-event layer (rounds, flows, bytes).
    pub stats: CollectiveStats,
}

/// Sums `contributions[i]` (one value per rank) with a recursive-doubling
/// tree; every rank learns the total.
pub fn allreduce_sum(
    contributions: &[u64],
    pmap: &ProcessMap,
    net: &NetworkModel,
) -> AllreduceOutcome {
    assert_eq!(contributions.len(), pmap.world_size());
    let value = contributions.iter().sum();
    // 8-byte payloads: pure latency. log2(nodes) wire rounds + shm rounds.
    let node_rounds = (pmap.nodes().max(1) as f64).log2().ceil();
    let wire = SimTime::from_secs(net.machine().nic.latency_s * 2.0 * node_rounds);
    let shm_rounds = (pmap.ppn().max(1) as f64).log2().ceil();
    let shm = SimTime::from_secs(0.5 * net.machine().sw_overhead_s * shm_rounds);
    // Volume tally mirrors the tree shape: every wire round exchanges one
    // 8-byte value per node both ways; every shm round touches one value
    // per rank.
    let wire_rounds = node_rounds as u64;
    let stats = CollectiveStats {
        rounds: wire_rounds + shm_rounds as u64,
        flows: wire_rounds * pmap.nodes() as u64,
        wire_bytes: 8 * wire_rounds * pmap.nodes() as u64,
        shm_bytes: 8 * shm_rounds as u64 * pmap.world_size() as u64,
        // The 8-byte control values are never codec-compressed.
        raw_bytes: 8 * wire_rounds * pmap.nodes() as u64,
    };
    AllreduceOutcome {
        value,
        cost: CommCost::inter_only(wire + shm),
        stats,
    }
}

/// Broadcast `bytes` from one rank to the whole world: binomial tree over
/// nodes, then an intra-node fan-out.
pub fn broadcast_cost(bytes: u64, pmap: &ProcessMap, net: &NetworkModel) -> CommCost {
    let nodes = pmap.nodes();
    let mut inter = SimTime::ZERO;
    // Binomial tree: ceil(log2(nodes)) rounds, doubling reached nodes.
    let mut reached = 1usize;
    let mut round = 0usize;
    while reached < nodes {
        let senders = reached.min(nodes - reached);
        let flows: Vec<Flow> = (0..senders)
            .map(|s| Flow::new(s, reached + s, bytes))
            .collect();
        inter += net.round_time(&flows);
        reached += senders;
        round += 1;
        assert!(round <= 64, "broadcast tree failed to terminate");
    }
    let intra_bcast = if pmap.ppn() > 1 {
        net.shm_copy_time(2 * bytes, pmap.ppn() - 1, 1)
    } else {
        SimTime::ZERO
    };
    CommCost {
        intra_gather: SimTime::ZERO,
        inter,
        intra_bcast,
    }
}

/// Fault-layer twin of the allreduce: resolves `plan` against the
/// leader-level recursive-doubling schedule (`fault::allreduce_edges`),
/// charging retransmit + backoff penalties against the supplied cost
/// sample.
pub fn inject_allreduce_faults(
    plan: &crate::fault::FaultPlan,
    level: usize,
    pmap: &ProcessMap,
    cost: &CommCost,
    stats: &CollectiveStats,
) -> crate::fault::FaultAdjustment {
    crate::fault::inject_collective(
        plan,
        level,
        nbfs_trace::CollectiveKind::Allreduce,
        &crate::fault::allreduce_edges(pmap),
        cost,
        stats,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use nbfs_topology::{presets, PlacementPolicy, ProcessMap};

    fn setup(nodes: usize, ppn: usize) -> (ProcessMap, NetworkModel) {
        let m = presets::xeon_x7550_cluster(nodes);
        let policy = if ppn > 1 {
            PlacementPolicy::BindToSocket
        } else {
            PlacementPolicy::Interleave
        };
        (ProcessMap::new(&m, ppn, policy), NetworkModel::new(&m))
    }

    #[test]
    fn allreduce_sums_correctly() {
        let (pmap, net) = setup(4, 8);
        let vals: Vec<u64> = (0..32).collect();
        let out = allreduce_sum(&vals, &pmap, &net);
        assert_eq!(out.value, 31 * 32 / 2);
        assert!(out.cost.total() > SimTime::ZERO);
        assert!(
            out.cost.total() < SimTime::from_micros(100.0),
            "allreduce must be latency-scale"
        );
    }

    #[test]
    fn barrier_grows_with_node_count() {
        let (p2, n2) = setup(2, 8);
        let (p16, n16) = setup(16, 8);
        assert!(barrier_cost(&p16, &n16) > barrier_cost(&p2, &n2));
    }

    #[test]
    fn single_node_barrier_is_shm_only() {
        let (p1, n1) = setup(1, 8);
        let t = barrier_cost(&p1, &n1);
        assert!(t < SimTime::from_micros(2.0));
    }

    #[test]
    fn broadcast_covers_arbitrary_node_counts() {
        for nodes in [1usize, 2, 3, 5, 16] {
            let (pmap, net) = setup(nodes, 1);
            let c = broadcast_cost(1 << 20, &pmap, &net);
            if nodes == 1 {
                assert_eq!(c.total(), SimTime::ZERO);
            } else {
                assert!(c.inter > SimTime::ZERO, "nodes={nodes}");
            }
        }
    }

    #[test]
    fn broadcast_bigger_is_slower() {
        let (pmap, net) = setup(8, 8);
        let small = broadcast_cost(1 << 10, &pmap, &net).total();
        let big = broadcast_cost(1 << 26, &pmap, &net).total();
        assert!(big > small);
    }
}
