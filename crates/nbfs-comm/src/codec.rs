//! Pluggable frontier/bitmap codecs for the collectives.
//!
//! Lv et al., "Compression and Sieve" (arXiv:1208.5542), cut BFS
//! communication volume two ways: *compress* the frontier payloads
//! (delta + varint over sorted vertex lists, run-length over dense
//! bitmaps) and *sieve* candidate records against the receiver's visited
//! state before they hit the wire. Both map directly onto this crate's
//! collective seams. This module supplies the codec half as a pluggable
//! [`FrontierCodec`] trait with three production implementations:
//!
//! * [`DeltaVarint`] — sorted sparse payloads: delta-encode the values,
//!   emit LEB128 varint bytes;
//! * [`WordRle`] — dense bitmap payloads: run-length over zero and full
//!   64-bit words with literal runs in between, riding the `words()`
//!   APIs of `nbfs-util`;
//! * [`SieveCodec`] — the sieve's wire side. The sieve pre-pass itself
//!   (dropping records the receiver has already visited) is applied by
//!   the engine before its alltoallv scatter; what survives is wired
//!   like [`DeltaVarint`].
//!
//! Honesty rules: a non-[`Codec::Raw`] collective really encodes into a
//! reusable [`CodecWorkspace`] buffer and really decodes into the
//! destination — a codec bug breaks the BFS parents, not just a byte
//! counter — and the *encoded* sizes are what the flow/network model
//! prices. Every encoder starts with a one-byte tag and falls back to a
//! raw passthrough when encoding would not shrink the payload, so a
//! compressed message never moves more than `raw + 1` bytes.

use serde::{Deserialize, Serialize};

use nbfs_simnet::NetworkModel;
use nbfs_topology::ProcessMap;
use nbfs_trace::CollectiveStats;
use nbfs_util::varint::{push_varint, read_varint, unzigzag, zigzag};

use crate::allgather::{
    allgather_cost_bytes, allgather_stats_bytes, allgather_words_into, allgatherv_items,
    AllgatherAlgorithm, AllgathervOutcome,
};
use crate::profile::CommCost;

/// Which codec a collective payload goes through. The enum is the
/// selector carried by scenarios / CLI flags; [`Codec::implementation`]
/// resolves it to the [`FrontierCodec`] doing the byte work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// No encoding: today's byte-for-byte collective path. Default.
    #[default]
    Raw,
    /// Delta + LEB128 varint over sorted sparse payloads.
    DeltaVarint,
    /// Run-length over zero/full 64-bit words of dense bitmap payloads.
    WordRle,
    /// Engine-side sieve pre-pass, [`DeltaVarint`]-style wire encoding.
    Sieve,
}

impl Codec {
    /// Every codec, for matrix-style harnesses.
    pub const ALL: [Codec; 4] = [Codec::Raw, Codec::DeltaVarint, Codec::WordRle, Codec::Sieve];

    /// Short label, also the CLI spelling (`--codec`).
    pub fn label(self) -> &'static str {
        self.implementation().label()
    }

    /// Parses the CLI spelling. `None` for unknown names.
    pub fn parse(name: &str) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.label() == name)
    }

    /// Whether this codec leaves payloads untouched.
    pub fn is_raw(self) -> bool {
        self == Codec::Raw
    }

    /// Whether the engine should run the sieve pre-pass before its
    /// alltoallv scatter.
    pub fn sieves(self) -> bool {
        self == Codec::Sieve
    }

    /// The [`FrontierCodec`] implementation behind this selector.
    pub fn implementation(self) -> &'static dyn FrontierCodec {
        match self {
            Codec::Raw => &Raw,
            Codec::DeltaVarint => &DeltaVarint,
            Codec::WordRle => &WordRle,
            Codec::Sieve => &SieveCodec,
        }
    }
}

/// Leading tag byte: the payload that follows is the raw little-endian
/// bytes of the input (the encoder's no-win fallback, and [`Raw`]'s only
/// mode).
const TAG_RAW: u8 = 0;
/// Leading tag byte: the payload that follows is codec-encoded.
const TAG_ENCODED: u8 = 1;

/// Word-RLE token: a run of all-zero words follows (varint run length).
const RLE_ZERO: u8 = 0;
/// Word-RLE token: a run of all-ones words follows (varint run length).
const RLE_FULL: u8 = 1;
/// Word-RLE token: a literal run follows (varint count, then the words).
const RLE_LITERAL: u8 = 2;

/// A reversible encoding for the three payload shapes the collectives
/// move: dense bitmap word segments, sorted `u32` vertex lists, and
/// `(u32, u32)` record streams. Implementations must be exact inverses
/// (`decode(encode(x)) == x`) — the engine routes real traffic through
/// them — and should fall back to the [`TAG_RAW`] passthrough whenever
/// encoding would not shrink the payload, capping every message at
/// `raw + 1` bytes.
pub trait FrontierCodec {
    /// Short label for tables and CLI flags.
    fn label(&self) -> &'static str;

    /// Encodes a bitmap word segment into `buf` (cleared first).
    fn encode_words(&self, words: &[u64], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_RAW);
        write_raw_words(words, buf);
    }

    /// Decodes an `encode_words` payload into `dst` (the segment's exact
    /// word count; fully overwritten).
    fn decode_words(&self, buf: &[u8], dst: &mut [u64]) {
        read_raw_words(strip_raw_tag(buf), dst);
    }

    /// Encodes a sorted (ascending) `u32` list into `buf` (cleared first).
    fn encode_sorted_u32(&self, values: &[u32], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_RAW);
        write_raw_u32s(values, buf);
    }

    /// Decodes an `encode_sorted_u32` payload, appending to `out`.
    fn decode_sorted_u32(&self, buf: &[u8], out: &mut Vec<u32>) {
        read_raw_u32s(strip_raw_tag(buf), out);
    }

    /// Encodes a `(u32, u32)` record stream into `buf` (cleared first).
    fn encode_pairs(&self, records: &[(u32, u32)], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_RAW);
        write_raw_pairs(records, buf);
    }

    /// Decodes an `encode_pairs` payload, appending to `out`.
    fn decode_pairs(&self, buf: &[u8], out: &mut Vec<(u32, u32)>) {
        read_raw_pairs(strip_raw_tag(buf), out);
    }
}

/// Identity codec: tagged little-endian passthrough for every payload
/// shape. The trait's default methods *are* this codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Raw;

impl FrontierCodec for Raw {
    fn label(&self) -> &'static str {
        "raw"
    }
}

/// Delta + LEB128 varint codec for sorted sparse payloads. Word segments
/// are encoded as delta-varints over their set-bit positions; record
/// pairs as zigzag deltas per component.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaVarint;

impl FrontierCodec for DeltaVarint {
    fn label(&self) -> &'static str {
        "delta-varint"
    }

    fn encode_words(&self, words: &[u64], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_ENCODED);
        // Delta-varint the set-bit positions of the segment.
        let mut prev = 0u64;
        for (wi, &w) in words.iter().enumerate() {
            let mut pending = w;
            while pending != 0 {
                let pos = (wi as u64) * 64 + u64::from(pending.trailing_zeros());
                pending &= pending - 1;
                push_varint(buf, pos - prev);
                prev = pos;
            }
        }
        raw_fallback(buf, words.len() * 8, |b| write_raw_words(words, b));
    }

    fn decode_words(&self, buf: &[u8], dst: &mut [u64]) {
        let Some(payload) = encoded_payload(buf, dst) else {
            return;
        };
        let mut at = 0usize;
        let mut pos = 0u64;
        while at < payload.len() {
            let (delta, next) = read_varint(payload, at);
            at = next;
            pos += delta;
            let slot = (pos / 64) as usize;
            assert!(slot < dst.len(), "bit position overflows segment");
            dst[slot] |= 1u64 << (pos % 64);
        }
    }

    fn encode_sorted_u32(&self, values: &[u32], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_ENCODED);
        let mut prev = 0u64;
        for &value in values {
            let cur = u64::from(value);
            debug_assert!(cur >= prev || prev == 0, "list must be sorted");
            push_varint(buf, cur.wrapping_sub(prev));
            prev = cur;
        }
        raw_fallback(buf, values.len() * 4, |b| write_raw_u32s(values, b));
    }

    fn decode_sorted_u32(&self, buf: &[u8], out: &mut Vec<u32>) {
        assert!(!buf.is_empty(), "empty codec payload");
        let payload = &buf[1..];
        if buf[0] == TAG_RAW {
            read_raw_u32s(payload, out);
            return;
        }
        let mut at = 0usize;
        let mut prev = 0u64;
        while at < payload.len() {
            let (delta, next) = read_varint(payload, at);
            at = next;
            let cur = prev.wrapping_add(delta);
            assert!(cur <= u64::from(u32::MAX), "decoded value overflows u32");
            out.push(cur as u32);
            prev = cur;
        }
    }

    fn encode_pairs(&self, records: &[(u32, u32)], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_ENCODED);
        // The scatter's records are only loosely ordered, so both
        // components are zigzag-delta encoded against their own
        // predecessor.
        let mut prev_a = 0i64;
        let mut prev_b = 0i64;
        for &(a_val, b_val) in records {
            let cur_a = i64::from(a_val);
            let cur_b = i64::from(b_val);
            push_varint(buf, zigzag(cur_a - prev_a));
            push_varint(buf, zigzag(cur_b - prev_b));
            prev_a = cur_a;
            prev_b = cur_b;
        }
        raw_fallback(buf, records.len() * 8, |b| write_raw_pairs(records, b));
    }

    fn decode_pairs(&self, buf: &[u8], out: &mut Vec<(u32, u32)>) {
        assert!(!buf.is_empty(), "empty codec payload");
        let payload = &buf[1..];
        if buf[0] == TAG_RAW {
            read_raw_pairs(payload, out);
            return;
        }
        let mut at = 0usize;
        let mut prev_a = 0i64;
        let mut prev_b = 0i64;
        while at < payload.len() {
            let (za, next) = read_varint(payload, at);
            let (zb, after) = read_varint(payload, next);
            at = after;
            let cur_a = prev_a + unzigzag(za);
            let cur_b = prev_b + unzigzag(zb);
            let range = 0..=i64::from(u32::MAX);
            assert!(
                range.contains(&cur_a) && range.contains(&cur_b),
                "decoded pair overflows u32"
            );
            out.push((cur_a as u32, cur_b as u32));
            prev_a = cur_a;
            prev_b = cur_b;
        }
    }
}

/// Run-length codec for dense bitmap word segments: zero and all-ones
/// runs tokenize to a byte plus a varint (the "word-skip" of the paper's
/// compression); mixed words travel as literal runs. Sorted lists and
/// record pairs are not its shape and pass through raw.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordRle;

impl FrontierCodec for WordRle {
    fn label(&self) -> &'static str {
        "word-rle"
    }

    fn encode_words(&self, words: &[u64], buf: &mut Vec<u8>) {
        buf.clear();
        buf.push(TAG_ENCODED);
        let mut at = 0usize;
        while at < words.len() {
            let w = words[at];
            if w == 0 || w == u64::MAX {
                let mut run = 1usize;
                while at + run < words.len() && words[at + run] == w {
                    run += 1;
                }
                buf.push(if w == 0 { RLE_ZERO } else { RLE_FULL });
                push_varint(buf, run as u64);
                at += run;
            } else {
                let mut run = 1usize;
                while at + run < words.len() && words[at + run] != 0 && words[at + run] != u64::MAX
                {
                    run += 1;
                }
                buf.push(RLE_LITERAL);
                push_varint(buf, run as u64);
                for &lit in &words[at..at + run] {
                    buf.extend_from_slice(&lit.to_le_bytes());
                }
                at += run;
            }
        }
        raw_fallback(buf, words.len() * 8, |b| write_raw_words(words, b));
    }

    fn decode_words(&self, buf: &[u8], dst: &mut [u64]) {
        let Some(payload) = encoded_payload(buf, dst) else {
            return;
        };
        let mut at = 0usize;
        let mut filled = 0usize;
        while at < payload.len() {
            let token = payload[at];
            let (run, next) = read_varint(payload, at + 1);
            at = next;
            let run = run as usize;
            assert!(filled + run <= dst.len(), "RLE run overflows segment");
            assert!(
                token == RLE_ZERO || token == RLE_FULL || token == RLE_LITERAL,
                "unknown RLE token"
            );
            match token {
                RLE_ZERO => {}
                RLE_FULL => dst[filled..filled + run].fill(u64::MAX),
                _ => {
                    for slot in dst[filled..filled + run].iter_mut() {
                        assert!(at + 8 <= payload.len(), "truncated literal run");
                        let mut raw = [0u8; 8];
                        raw.copy_from_slice(&payload[at..at + 8]);
                        *slot = u64::from_le_bytes(raw);
                        at += 8;
                    }
                }
            }
            filled += run;
        }
        assert_eq!(filled, dst.len(), "RLE payload does not cover segment");
    }
}

/// Wire side of the sieve: identical byte encoding to [`DeltaVarint`].
/// The sieve's *filtering* (dropping records whose owner has already
/// visited the destination) happens in the engine before the scatter, so
/// this codec only has to move what survived.
#[derive(Clone, Copy, Debug, Default)]
pub struct SieveCodec;

impl FrontierCodec for SieveCodec {
    fn label(&self) -> &'static str {
        "sieve"
    }

    fn encode_words(&self, words: &[u64], buf: &mut Vec<u8>) {
        DeltaVarint.encode_words(words, buf);
    }

    fn decode_words(&self, buf: &[u8], dst: &mut [u64]) {
        DeltaVarint.decode_words(buf, dst);
    }

    fn encode_sorted_u32(&self, values: &[u32], buf: &mut Vec<u8>) {
        DeltaVarint.encode_sorted_u32(values, buf);
    }

    fn decode_sorted_u32(&self, buf: &[u8], out: &mut Vec<u32>) {
        DeltaVarint.decode_sorted_u32(buf, out);
    }

    fn encode_pairs(&self, records: &[(u32, u32)], buf: &mut Vec<u8>) {
        DeltaVarint.encode_pairs(records, buf);
    }

    fn decode_pairs(&self, buf: &[u8], out: &mut Vec<(u32, u32)>) {
        DeltaVarint.decode_pairs(buf, out);
    }
}

/// Replaces `buf` (tagged encoding) with a raw passthrough when the
/// encoded payload did not undercut the raw byte size.
fn raw_fallback<F: FnOnce(&mut Vec<u8>)>(buf: &mut Vec<u8>, raw_len: usize, write_raw: F) {
    if buf.len() > raw_len + 1 {
        buf.clear();
        buf.push(TAG_RAW);
        write_raw(buf);
    }
    debug_assert!(buf.len() <= raw_len + 1, "fallback must cap the size");
}

/// Asserts the payload carries the raw tag and returns the bytes after
/// it. [`Raw`] can only meet raw-tagged payloads: its encoders never emit
/// [`TAG_ENCODED`], and codecs are never mixed across an exchange.
fn strip_raw_tag(buf: &[u8]) -> &[u8] {
    assert!(!buf.is_empty(), "empty codec payload");
    assert_eq!(buf[0], TAG_RAW, "raw codec met an encoded payload");
    &buf[1..]
}

/// Shared prologue of the word decoders: handles the raw-tag fallback
/// (returning `None` once `dst` is filled) or zeroes `dst` and hands the
/// encoded payload back for codec-specific decoding.
fn encoded_payload<'a>(buf: &'a [u8], dst: &mut [u64]) -> Option<&'a [u8]> {
    assert!(!buf.is_empty(), "empty codec payload");
    if buf[0] == TAG_RAW {
        read_raw_words(&buf[1..], dst);
        return None;
    }
    dst.fill(0);
    Some(&buf[1..])
}

fn write_raw_words(words: &[u64], buf: &mut Vec<u8>) {
    for &w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

fn read_raw_words(payload: &[u8], dst: &mut [u64]) {
    assert_eq!(payload.len(), dst.len() * 8, "raw payload size mismatch");
    for (word, chunk) in dst.iter_mut().zip(payload.chunks_exact(8)) {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        *word = u64::from_le_bytes(raw);
    }
}

fn write_raw_u32s(values: &[u32], buf: &mut Vec<u8>) {
    for &value in values {
        buf.extend_from_slice(&value.to_le_bytes());
    }
}

fn read_raw_u32s(payload: &[u8], out: &mut Vec<u32>) {
    assert_eq!(payload.len() % 4, 0, "raw u32 payload size mismatch");
    for chunk in payload.chunks_exact(4) {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(chunk);
        out.push(u32::from_le_bytes(raw));
    }
}

fn write_raw_pairs(records: &[(u32, u32)], buf: &mut Vec<u8>) {
    for &(a_val, b_val) in records {
        buf.extend_from_slice(&a_val.to_le_bytes());
        buf.extend_from_slice(&b_val.to_le_bytes());
    }
}

fn read_raw_pairs(payload: &[u8], out: &mut Vec<(u32, u32)>) {
    assert_eq!(payload.len() % 8, 0, "raw pair payload size mismatch");
    for chunk in payload.chunks_exact(8) {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&chunk[..4]);
        let a_val = u32::from_le_bytes(raw);
        raw.copy_from_slice(&chunk[4..]);
        out.push((a_val, u32::from_le_bytes(raw)));
    }
}

/// Reusable per-rank staging for the codec-aware collectives: encoded
/// payload buffers plus the raw/encoded size vectors the cost and stats
/// walks consume. Buffers grow to the high-water mark of the run and stay
/// there (the same treatment the allgather/alltoallv staging gets).
#[derive(Debug, Default)]
pub struct CodecWorkspace {
    bufs: Vec<Vec<u8>>,
    raw_bytes: Vec<u64>,
    enc_bytes: Vec<u64>,
}

impl CodecWorkspace {
    /// Per-rank raw (pre-encoding) byte sizes of the last collective.
    pub fn raw_sizes(&self) -> &[u64] {
        &self.raw_bytes
    }

    /// Per-rank encoded (wire) byte sizes of the last collective. Equal
    /// to [`CodecWorkspace::raw_sizes`] under [`Codec::Raw`].
    pub fn enc_sizes(&self) -> &[u64] {
        &self.enc_bytes
    }

    /// Resets the size vectors for `np` ranks and makes sure `np` encode
    /// buffers exist (their allocations are kept).
    fn reset(&mut self, np: usize) {
        self.bufs.resize_with(np, Vec::new);
        self.raw_bytes.clear();
        self.raw_bytes.resize(np, 0);
        self.enc_bytes.clear();
        self.enc_bytes.resize(np, 0);
    }
}

/// Codec-aware form of [`allgather_words_into`]: concatenates the
/// per-rank word segments into `dst` and returns the cost of moving the
/// *encoded* segments with `algo`.
///
/// Under [`Codec::Raw`] this delegates to [`allgather_words_into`]
/// unchanged (bit-for-bit, cost included). Otherwise every segment is
/// really encoded into the workspace and really decoded into its `dst`
/// slice, so a codec defect corrupts the BFS rather than silently
/// discounting bytes. `ws` retains the raw/encoded size vectors for the
/// caller's stats ([`allgather_codec_stats`]).
pub fn allgather_words_codec_into(
    dst: &mut [u64],
    parts: &[&[u64]],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
    codec: Codec,
    ws: &mut CodecWorkspace,
) -> CommCost {
    assert_eq!(parts.len(), pmap.world_size(), "need one segment per rank");
    ws.reset(parts.len());
    for (r, part) in parts.iter().enumerate() {
        ws.raw_bytes[r] = part.len() as u64 * 8;
    }
    if codec.is_raw() {
        ws.enc_bytes.copy_from_slice(&ws.raw_bytes);
        return allgather_words_into(dst, parts, pmap, net, algo);
    }
    let total: usize = parts.iter().map(|p| p.len()).sum();
    assert_eq!(dst.len(), total, "dst must hold the concatenated segments");
    let imp = codec.implementation();
    let mut at = 0usize;
    for (r, part) in parts.iter().enumerate() {
        imp.encode_words(part, &mut ws.bufs[r]);
        ws.enc_bytes[r] = ws.bufs[r].len() as u64;
        imp.decode_words(&ws.bufs[r], &mut dst[at..at + part.len()]);
        at += part.len();
    }
    allgather_cost_bytes(&ws.enc_bytes, pmap, net, algo)
}

/// Stats twin of the codec-aware allgathers: the round/flow/byte tally of
/// the *encoded* exchange, with `raw_bytes` carrying the wire volume the
/// same exchange would have moved uncompressed.
pub fn allgather_codec_stats(
    ws: &CodecWorkspace,
    pmap: &ProcessMap,
    algo: AllgatherAlgorithm,
) -> CollectiveStats {
    let mut stats = allgather_stats_bytes(ws.enc_sizes(), pmap, algo);
    stats.raw_bytes = allgather_stats_bytes(ws.raw_sizes(), pmap, algo).wire_bytes;
    stats
}

/// Codec-aware form of [`allgatherv_items`] for sorted `u32` frontier
/// lists: every list is encoded into the workspace and decoded into the
/// concatenated result, and the cost prices the encoded sizes. Under
/// [`Codec::Raw`] this delegates to [`allgatherv_items`] unchanged.
pub fn allgatherv_u32_codec(
    lists: &[Vec<u32>],
    pmap: &ProcessMap,
    net: &NetworkModel,
    algo: AllgatherAlgorithm,
    codec: Codec,
    ws: &mut CodecWorkspace,
) -> AllgathervOutcome<u32> {
    assert_eq!(lists.len(), pmap.world_size(), "one list per rank");
    ws.reset(lists.len());
    for (r, list) in lists.iter().enumerate() {
        ws.raw_bytes[r] = list.len() as u64 * 4;
    }
    if codec.is_raw() {
        ws.enc_bytes.copy_from_slice(&ws.raw_bytes);
        return allgatherv_items(lists, 4, pmap, net, algo);
    }
    let total: usize = lists.iter().map(Vec::len).sum();
    let imp = codec.implementation();
    let mut items: Vec<u32> = Vec::with_capacity(total);
    for (r, list) in lists.iter().enumerate() {
        imp.encode_sorted_u32(list, &mut ws.bufs[r]);
        ws.enc_bytes[r] = ws.bufs[r].len() as u64;
        imp.decode_sorted_u32(&ws.bufs[r], &mut items);
    }
    let cost = allgather_cost_bytes(&ws.enc_bytes, pmap, net, algo);
    AllgathervOutcome { items, cost }
}

/// Encoded byte size of one word payload under `codec`, using `scratch`
/// as the staging buffer. For cost-only payloads (the `in_queue_summary`
/// allgather materializes no concatenation, but its wire size under a
/// codec is the encoded size of the summary words).
pub fn encoded_words_size(codec: Codec, words: &[u64], scratch: &mut Vec<u8>) -> u64 {
    if codec.is_raw() {
        return words.len() as u64 * 8;
    }
    codec.implementation().encode_words(words, scratch);
    scratch.len() as u64
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for codec in Codec::ALL {
            assert_eq!(Codec::parse(codec.label()), Some(codec));
        }
        assert_eq!(Codec::parse("zstd"), None);
        assert_eq!(Codec::default(), Codec::Raw);
    }

    #[test]
    fn words_round_trip_every_codec() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![u64::MAX],
            vec![0b1010, 0, 0, u64::MAX, 7, 0],
            vec![0; 64],
            vec![u64::MAX; 64],
            (0..33)
                .map(|i| if i % 3 == 0 { 0 } else { 1 << (i % 64) })
                .collect(),
        ];
        let mut buf = Vec::new();
        for words in &cases {
            for codec in Codec::ALL {
                let imp = codec.implementation();
                imp.encode_words(words, &mut buf);
                assert!(buf.len() <= words.len() * 8 + 1, "{codec:?} exceeded cap");
                let mut back = vec![0xdead_beef_u64; words.len()];
                imp.decode_words(&buf, &mut back);
                assert_eq!(&back, words, "{codec:?}");
            }
        }
    }

    #[test]
    fn sparse_words_shrink_under_both_codecs() {
        // One set bit per 8 words: 4096 words = 32 KiB raw.
        let words: Vec<u64> = (0..4096).map(|i| u64::from(i % 8 == 0)).collect();
        let mut buf = Vec::new();
        WordRle.encode_words(&words, &mut buf);
        assert!(
            buf.len() * 2 < words.len() * 8,
            "RLE must shrink sparse words"
        );
        DeltaVarint.encode_words(&words, &mut buf);
        assert!(
            buf.len() * 2 < words.len() * 8,
            "delta must shrink sparse words"
        );
    }

    #[test]
    fn sorted_lists_round_trip() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![1, 2, 3, 100, 1_000_000, u32::MAX],
            (0..500).map(|i| i * 7).collect(),
        ];
        let mut buf = Vec::new();
        for list in &cases {
            for codec in Codec::ALL {
                let imp = codec.implementation();
                imp.encode_sorted_u32(list, &mut buf);
                assert!(buf.len() <= list.len() * 4 + 1, "{codec:?} exceeded cap");
                let mut back = Vec::new();
                imp.decode_sorted_u32(&buf, &mut back);
                assert_eq!(&back, list, "{codec:?}");
            }
        }
    }

    #[test]
    fn dense_sorted_lists_shrink() {
        let list: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let mut buf = Vec::new();
        DeltaVarint.encode_sorted_u32(&list, &mut buf);
        assert!(
            buf.len() * 3 < list.len() * 4,
            "small deltas must shrink 3x+"
        );
    }

    #[test]
    fn pairs_round_trip() {
        let cases: Vec<Vec<(u32, u32)>> = vec![
            vec![],
            vec![(0, 0)],
            vec![(u32::MAX, 0), (0, u32::MAX)],
            (0..300).map(|i| (i * 5, i)).collect(),
        ];
        let mut buf = Vec::new();
        for records in &cases {
            for codec in Codec::ALL {
                let imp = codec.implementation();
                imp.encode_pairs(records, &mut buf);
                assert!(buf.len() <= records.len() * 8 + 1, "{codec:?} exceeded cap");
                let mut back = Vec::new();
                imp.decode_pairs(&buf, &mut back);
                assert_eq!(&back, records, "{codec:?}");
            }
        }
    }

    #[test]
    fn encoded_size_helper_matches_encoder() {
        let words: Vec<u64> = (0..128).map(|i| if i % 4 == 0 { 3 } else { 0 }).collect();
        let mut scratch = Vec::new();
        // Raw skips the encoder entirely: its size is the untagged byte
        // count, preserving today's cost accounting bit-for-bit.
        assert_eq!(
            encoded_words_size(Codec::Raw, &words, &mut scratch),
            words.len() as u64 * 8
        );
        for codec in [Codec::DeltaVarint, Codec::WordRle, Codec::Sieve] {
            let size = encoded_words_size(codec, &words, &mut scratch);
            let mut buf = Vec::new();
            codec.implementation().encode_words(&words, &mut buf);
            assert_eq!(size, buf.len() as u64, "{codec:?}");
        }
    }
}
