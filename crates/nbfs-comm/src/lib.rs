//! Message passing substrate for the distributed hybrid BFS.
//!
//! Real MPI and InfiniBand are unavailable in this reproduction, so this
//! crate supplies both halves of the substitution:
//!
//! * [`runtime`] — a *functional* rank runtime: each rank is an OS thread
//!   with a mailbox; point-to-point sends, barriers and a straightforward
//!   allgather really move data between threads. This demonstrates the SPMD
//!   programming surface and backs the runtime-focused tests and example.
//! * [`allgather`] / [`alltoallv`] / [`collectives`] — BSP-style collective
//!   *simulations*: they perform the actual data movement over all ranks'
//!   buffers at once (so correctness is exercised end-to-end) while
//!   charging simulated time to the `nbfs-simnet` models per algorithm
//!   step. These are what the BFS engine uses, because the paper's
//!   optimizations are precisely different collective algorithms:
//!
//!   | paper | here |
//!   |---|---|
//!   | Open MPI 1.5.5 default allgather (ring for large messages) | [`allgather::AllgatherAlgorithm::Ring`] |
//!   | recursive doubling (Thakur & Gropp \[41\], small messages)   | [`allgather::AllgatherAlgorithm::RecursiveDoubling`] |
//!   | leader-based (Mamidala et al. \[31\], Fig. 5a)               | [`allgather::AllgatherAlgorithm::LeaderBased`] |
//!   | shared `in_queue` (Fig. 5b, Section III.A.1)               | [`allgather::AllgatherAlgorithm::SharedDest`] |
//!   | shared `in_queue` + `out_queue` (Section III.A.2)          | [`allgather::AllgatherAlgorithm::SharedBoth`] |
//!   | parallelized allgather (Fig. 7, Section III.B)             | [`allgather::AllgatherAlgorithm::ParallelSubgroup`] |
//!
//! * [`codec`] — pluggable frontier/bitmap compression (delta-varint,
//!   word-RLE, sieve) applied at the collective seams, with honest
//!   raw-vs-wire byte accounting (Lv et al., arXiv:1208.5542).
//! * [`profile`] — the per-step time split (intra-node gather, inter-node
//!   exchange, intra-node broadcast) that Figs. 6 and 13 report.

#![forbid(unsafe_code)]
// u64 offsets and counters are indexed into slices throughout; usize is
// 64 bits on every supported target (documented in DESIGN.md), so these
// casts cannot truncate. Narrowing *vertex ids* to u32/u16 is the risky
// direction, and that is gated by the nbfs-analysis NBFS005 rule instead.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod allgather;
pub mod alltoallv;
pub mod buffers;
pub mod codec;
pub mod collectives;
pub mod fault;
pub mod profile;
pub mod runtime;
pub mod tags;

pub use allgather::{
    allgather_cost, allgather_cost_bytes, allgather_words, AllgatherAlgorithm, AllgatherOutcome,
};
pub use codec::{Codec, CodecWorkspace, FrontierCodec};
pub use fault::{FaultAdjustment, FaultPlan, FaultScope, FaultSpec};
pub use profile::CommCost;
