//! Deterministic fault injection for the simulated runtime.
//!
//! A [`FaultPlan`] is a seeded description of adversarial behaviour: which
//! transfers drop, arrive late, duplicate, reorder, and which ranks stall
//! or crash. Fates are *pure functions* of `(plan seed, fault site,
//! attempt)` via the counter-based RNG ([`nbfs_util::rng::counter_f64`]),
//! so the same plan replayed against the same communication schedule fires
//! the same faults — regardless of thread interleaving, and across worlds
//! of any size. That determinism is what makes chaos runs diffable: the
//! conformance suite replays a seed and asserts byte-identical fault logs.
//!
//! Two consumers thread a plan through their transfers:
//!
//! * the threaded SPMD runtime ([`crate::runtime`]) consults the plan on
//!   every `send`, with bounded retry + exponential backoff on drops and
//!   tombstone-based crash propagation (never a hang);
//! * the one-shot BSP collectives walk a *third twin* of their round
//!   structure ([`allgather_edges`] and friends mirror the cost/stats
//!   twins in `allgather.rs`) and charge retry penalties into the level's
//!   communication time without touching the data movement — recovered
//!   runs stay bit-identical to fault-free runs by construction.
//!
//! Exhausted budgets and crashes degrade to structured errors
//! ([`NbfsError::Fault`] / [`NbfsError::RankFailed`]) carrying the failing
//! edge and level.

use nbfs_topology::ProcessMap;
use nbfs_trace::{CollectiveKind, CollectiveStats, FaultKind, FaultOp, FaultRecord};
use nbfs_util::{rng, NbfsError, SimTime};

use crate::allgather::AllgatherAlgorithm;
use crate::profile::CommCost;
use crate::tags;

/// Which transfers a [`FaultSpec`] applies to. `None` fields match
/// anything, so `FaultScope::default()` scopes to every site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultScope {
    /// Only edges leaving this rank.
    pub src: Option<usize>,
    /// Only edges entering this rank.
    pub dst: Option<usize>,
    /// Only this message tag (p2p) or round index (collectives).
    pub tag: Option<u64>,
    /// Only this operation (p2p, one collective kind, or rank fates).
    pub op: Option<FaultOp>,
    /// Only this BFS level (never matches the level-less p2p runtime).
    pub level: Option<usize>,
}

impl FaultScope {
    /// Matches every site.
    pub fn any() -> FaultScope {
        FaultScope::default()
    }

    /// Restricts to edges leaving `src`.
    #[must_use]
    pub fn src(mut self, src: usize) -> FaultScope {
        self.src = Some(src);
        self
    }

    /// Restricts to edges entering `dst`.
    #[must_use]
    pub fn dst(mut self, dst: usize) -> FaultScope {
        self.dst = Some(dst);
        self
    }

    /// Restricts to one tag (p2p) or round index (collectives).
    #[must_use]
    pub fn tag(mut self, tag: u64) -> FaultScope {
        self.tag = Some(tag);
        self
    }

    /// Restricts to one operation.
    #[must_use]
    pub fn op(mut self, op: FaultOp) -> FaultScope {
        self.op = Some(op);
        self
    }

    /// Restricts to one BFS level.
    #[must_use]
    pub fn level(mut self, level: usize) -> FaultScope {
        self.level = Some(level);
        self
    }

    fn matches(&self, site: &FaultSite) -> bool {
        self.src.is_none_or(|s| s == site.src)
            && self.dst.is_none_or(|d| d == site.dst)
            && self.tag.is_none_or(|t| t == site.tag)
            && self.op.is_none_or(|o| o == site.op)
            && self.level.is_none_or(|l| Some(l) == site.level)
    }
}

/// One fault rule: a kind, where it applies, and how often it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// What the fault does.
    pub kind: FaultKind,
    /// Which sites it can hit.
    pub scope: FaultScope,
    /// Firing probability per `(site, attempt)` draw; `1.0` fires on every
    /// matching site (deterministically, like every other rate).
    pub rate: f64,
    /// If `false` (default), the fate only fires on the *first* delivery
    /// attempt — so a dropped transfer always recovers on retry. If
    /// `true`, retries re-roll the fate, and `rate = 1.0` deterministically
    /// exhausts the budget.
    pub every_attempt: bool,
}

impl FaultSpec {
    /// A first-attempt-only spec firing on every matching site.
    pub fn new(kind: FaultKind, scope: FaultScope) -> FaultSpec {
        FaultSpec {
            kind,
            scope,
            rate: 1.0,
            every_attempt: false,
        }
    }

    /// Sets the firing probability.
    #[must_use]
    pub fn rate(mut self, rate: f64) -> FaultSpec {
        self.rate = rate;
        self
    }

    /// Makes the fate re-roll on every retry (see [`FaultSpec`]).
    #[must_use]
    pub fn every_attempt(mut self) -> FaultSpec {
        self.every_attempt = true;
        self
    }
}

/// A seeded, deterministic fault plan plus the recovery budget.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the counter-based fate draws.
    pub seed: u64,
    /// Total delivery attempts before a dropped transfer gives up.
    pub max_attempts: u32,
    /// Backoff charged before retry `r` is `backoff_base * factor^r`.
    pub backoff_base: SimTime,
    /// Exponential backoff growth factor.
    pub backoff_factor: f64,
    /// Simulated penalty a delayed transfer is charged.
    pub delay_penalty: SimTime,
    /// Simulated penalty a stalled transfer or rank is charged.
    pub stall_penalty: SimTime,
    /// The fault rules, evaluated in order (first match fires).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the default recovery budget:
    /// 4 attempts, 10 µs base backoff doubling per retry, 50 µs delay
    /// penalty, 1 ms stall penalty.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            max_attempts: 4,
            backoff_base: SimTime::from_micros(10.0),
            backoff_factor: 2.0,
            delay_penalty: SimTime::from_micros(50.0),
            stall_penalty: SimTime::from_millis(1.0),
            specs: Vec::new(),
        }
    }

    /// Adds a fault rule.
    #[must_use]
    pub fn spec(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Overrides the retry budget (total attempts, minimum 1).
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> FaultPlan {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the exponential backoff schedule.
    #[must_use]
    pub fn backoff(mut self, base: SimTime, factor: f64) -> FaultPlan {
        self.backoff_base = base;
        self.backoff_factor = factor;
        self
    }

    /// Backoff charged before retry `retry` (0-based).
    pub fn backoff_for(&self, retry: u32) -> SimTime {
        SimTime::from_secs(self.backoff_base.as_secs() * self.backoff_factor.powi(retry as i32))
    }

    /// Whether any rule could hit `op` at all (cheap gate for hot paths).
    pub fn covers(&self, op: FaultOp) -> bool {
        self.specs
            .iter()
            .any(|s| s.scope.op.is_none_or(|o| o == op))
    }

    /// The fate of delivery attempt `attempt` (0-based) at `site`: the
    /// first rule that matches and draws under its rate. Pure in
    /// `(seed, site, attempt)`.
    pub fn fires(&self, site: &FaultSite, attempt: u32) -> Option<FaultKind> {
        for (index, spec) in self.specs.iter().enumerate() {
            if attempt > 0 && !spec.every_attempt {
                continue;
            }
            if !spec.scope.matches(site) {
                continue;
            }
            let key = site.key() ^ rng::splitmix64(0x5eed_fa17 ^ index as u64);
            if rng::counter_f64(self.seed, key, attempt) < spec.rate {
                return Some(spec.kind);
            }
        }
        None
    }
}

/// One place a fault can fire: an edge of an operation, plus enough
/// context to make repeated sends on the same edge distinct (`salt` is the
/// per-destination sequence number on p2p paths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// The operation.
    pub op: FaultOp,
    /// BFS level, if the operation runs inside one.
    pub level: Option<usize>,
    /// Source rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Message tag (p2p) or round index (collectives).
    pub tag: u64,
    /// Disambiguator for repeated transfers on the same edge/tag.
    pub salt: u64,
}

impl FaultSite {
    /// A point-to-point send site.
    pub fn p2p(src: usize, dst: usize, tag: u64, seq: u64) -> FaultSite {
        FaultSite {
            op: FaultOp::P2p,
            level: None,
            src,
            dst,
            tag,
            salt: seq,
        }
    }

    /// Stable mixing key for the fate draw.
    fn key(&self) -> u64 {
        let op_code = match self.op {
            FaultOp::P2p => 1,
            FaultOp::Rank => 2,
            FaultOp::Collective(kind) => kind
                .label()
                .bytes()
                .fold(16u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b))),
        };
        let mut h = rng::splitmix64(op_code);
        h = rng::splitmix64(h ^ self.level.map_or(u64::MAX, |l| l as u64));
        h = rng::splitmix64(h ^ (self.src as u64));
        h = rng::splitmix64(h ^ (self.dst as u64));
        h = rng::splitmix64(h ^ self.tag);
        rng::splitmix64(h ^ self.salt)
    }
}

/// What a fault pass did to an operation: penalties to charge, records to
/// trace, and the structured failure if recovery was impossible. Records
/// survive even when `failure` is set, so a crashed collective still
/// reports what led up to it.
#[derive(Debug, Default)]
pub struct FaultAdjustment {
    /// Total simulated penalty (retransmits, backoff, delays, stalls).
    pub penalty: SimTime,
    /// One record per fault, in deterministic edge order.
    pub records: Vec<FaultRecord>,
    /// Set when the operation could not complete.
    pub failure: Option<NbfsError>,
}

impl FaultAdjustment {
    /// No faults fired.
    pub fn clean() -> FaultAdjustment {
        FaultAdjustment::default()
    }

    /// Whether nothing happened.
    pub fn is_clean(&self) -> bool {
        self.records.is_empty() && self.failure.is_none()
    }

    fn push(&mut self, record: FaultRecord) {
        self.penalty += record.penalty;
        self.records.push(record);
    }
}

/// One edge of a collective's round structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEdge {
    /// Round index (the collective-side analogue of a tag).
    pub round: u64,
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
}

impl FaultEdge {
    fn new(round: u64, src: usize, dst: usize) -> FaultEdge {
        FaultEdge { round, src, dst }
    }
}

/// The rank-to-rank transfer schedule of an allgather — the fault layer's
/// third twin of the cost/stats walks in `allgather.rs`.
pub fn allgather_edges(pmap: &ProcessMap, algo: AllgatherAlgorithm) -> Vec<FaultEdge> {
    let np = pmap.world_size();
    match algo {
        AllgatherAlgorithm::Ring => ring_edges(np),
        AllgatherAlgorithm::RecursiveDoubling => {
            if np.is_power_of_two() {
                recursive_doubling_edges(np)
            } else {
                // Mirrors the cost model's fallback to the ring schedule.
                ring_edges(np)
            }
        }
        AllgatherAlgorithm::LeaderBased
        | AllgatherAlgorithm::SharedDest
        | AllgatherAlgorithm::SharedBoth => leader_ring_edges(pmap),
        AllgatherAlgorithm::ParallelSubgroup => subgroup_edges(pmap, pmap.ppn()),
        AllgatherAlgorithm::ParallelK(k) => subgroup_edges(pmap, k),
    }
}

fn ring_edges(np: usize) -> Vec<FaultEdge> {
    let mut edges = Vec::new();
    for round in 0..np.saturating_sub(1) {
        for i in 0..np {
            edges.push(FaultEdge::new(round as u64, i, (i + 1) % np));
        }
    }
    edges
}

fn recursive_doubling_edges(np: usize) -> Vec<FaultEdge> {
    let mut edges = Vec::new();
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < np {
        for i in 0..np {
            edges.push(FaultEdge::new(round, i, i ^ dist));
        }
        dist <<= 1;
        round += 1;
    }
    edges
}

fn leader_ring_edges(pmap: &ProcessMap) -> Vec<FaultEdge> {
    let nodes = pmap.nodes();
    let mut edges = Vec::new();
    for round in 0..nodes.saturating_sub(1) {
        for n in 0..nodes {
            edges.push(FaultEdge::new(
                round as u64,
                pmap.leader_of_node(n),
                pmap.leader_of_node((n + 1) % nodes),
            ));
        }
    }
    edges
}

fn subgroup_edges(pmap: &ProcessMap, k: usize) -> Vec<FaultEdge> {
    let nodes = pmap.nodes();
    let k = k.clamp(1, pmap.ppn());
    let mut edges = Vec::new();
    for round in 0..nodes.saturating_sub(1) {
        for n in 0..nodes {
            let src0 = pmap.ranks_of_node(n).start;
            let dst0 = pmap.ranks_of_node((n + 1) % nodes).start;
            for j in 0..k {
                edges.push(FaultEdge::new(round as u64, src0 + j, dst0 + j));
            }
        }
    }
    edges
}

/// The node-pair transfer schedule of the alltoallv exchange (one round,
/// leader ranks stand in for their nodes, matching how the cost model
/// aggregates wire traffic per node pair).
pub fn alltoallv_edges(pmap: &ProcessMap) -> Vec<FaultEdge> {
    let nodes = pmap.nodes();
    let mut edges = Vec::new();
    for s in 0..nodes {
        for d in 0..nodes {
            if s != d {
                edges.push(FaultEdge::new(
                    0,
                    pmap.leader_of_node(s),
                    pmap.leader_of_node(d),
                ));
            }
        }
    }
    edges
}

/// The leader-level transfer schedule of the scalar allreduce
/// (recursive doubling over nodes, like its wire-round cost model).
pub fn allreduce_edges(pmap: &ProcessMap) -> Vec<FaultEdge> {
    let nodes = pmap.nodes();
    let mut edges = Vec::new();
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < nodes {
        for n in 0..nodes {
            let partner = n ^ dist;
            if partner < nodes {
                edges.push(FaultEdge::new(
                    round,
                    pmap.leader_of_node(n),
                    pmap.leader_of_node(partner),
                ));
            }
        }
        dist <<= 1;
        round += 1;
    }
    edges
}

/// Walks a collective's edge schedule under `plan`, resolving each edge's
/// fate with bounded retry + exponential backoff. A dropped edge is
/// charged one per-round retransmit (`cost.total() / rounds`) plus backoff
/// per retry; exhaustion or a crash aborts with a structured failure, with
/// the records gathered so far preserved.
pub fn inject_collective(
    plan: &FaultPlan,
    level: usize,
    kind: CollectiveKind,
    edges: &[FaultEdge],
    cost: &CommCost,
    stats: &CollectiveStats,
) -> FaultAdjustment {
    let mut adj = FaultAdjustment::clean();
    let op = FaultOp::Collective(kind);
    if !plan.covers(op) {
        return adj;
    }
    let per_round = if stats.rounds > 0 {
        cost.total() / stats.rounds as f64
    } else {
        SimTime::ZERO
    };
    for edge in edges {
        let site = FaultSite {
            op,
            level: Some(level),
            src: edge.src,
            dst: edge.dst,
            tag: edge.round,
            salt: 0,
        };
        let record =
            |kind: FaultKind, attempts: u32, recovered: bool, penalty: SimTime| FaultRecord {
                level,
                kind,
                op,
                src: edge.src,
                dst: edge.dst,
                tag: edge.round,
                attempts,
                recovered,
                penalty,
            };
        let mut attempt: u32 = 0;
        let mut penalty = SimTime::ZERO;
        loop {
            let Some(fate) = plan.fires(&site, attempt) else {
                if attempt > 0 {
                    adj.push(record(FaultKind::Drop, attempt + 1, true, penalty));
                }
                break;
            };
            match fate {
                FaultKind::Drop => {
                    penalty += per_round + plan.backoff_for(attempt);
                    attempt += 1;
                    if attempt >= plan.max_attempts {
                        adj.push(record(FaultKind::Drop, attempt, false, penalty));
                        adj.failure = Some(edge_failure(
                            FaultKind::Drop,
                            op,
                            edge,
                            Some(level),
                            attempt,
                        ));
                        return adj;
                    }
                }
                FaultKind::Delay => {
                    penalty += plan.delay_penalty;
                    adj.push(record(FaultKind::Delay, attempt + 1, true, penalty));
                    break;
                }
                FaultKind::Duplicate => {
                    // The duplicate transfer costs one extra round share.
                    penalty += per_round;
                    adj.push(record(FaultKind::Duplicate, attempt + 1, true, penalty));
                    break;
                }
                FaultKind::Reorder => {
                    // BSP collectives reassemble by rank index, so a
                    // reordered arrival is absorbed for free.
                    adj.push(record(FaultKind::Reorder, attempt + 1, true, penalty));
                    break;
                }
                FaultKind::Stall => {
                    penalty += plan.stall_penalty;
                    adj.push(record(FaultKind::Stall, attempt + 1, true, penalty));
                    break;
                }
                FaultKind::Crash => {
                    adj.push(record(FaultKind::Crash, attempt + 1, false, penalty));
                    adj.failure = Some(edge_failure(
                        FaultKind::Crash,
                        op,
                        edge,
                        Some(level),
                        attempt + 1,
                    ));
                    return adj;
                }
            }
        }
    }
    adj
}

/// Resolves whole-rank fates ([`FaultOp::Rank`] sites) for one level:
/// stalls charge the plan's stall penalty, a crash aborts the level with
/// [`NbfsError::RankFailed`]. Transfer kinds scoped to rank sites are
/// ignored (there is no transfer to perturb).
pub fn inject_rank_faults(plan: &FaultPlan, level: usize, world: usize) -> FaultAdjustment {
    let mut adj = FaultAdjustment::clean();
    if !plan.covers(FaultOp::Rank) {
        return adj;
    }
    for rank in 0..world {
        let site = FaultSite {
            op: FaultOp::Rank,
            level: Some(level),
            src: rank,
            dst: rank,
            tag: tags::COLLECTIVE_SITE,
            salt: 0,
        };
        match plan.fires(&site, 0) {
            Some(FaultKind::Stall) => {
                adj.push(FaultRecord {
                    level,
                    kind: FaultKind::Stall,
                    op: FaultOp::Rank,
                    src: rank,
                    dst: rank,
                    tag: tags::COLLECTIVE_SITE,
                    attempts: 1,
                    recovered: true,
                    penalty: plan.stall_penalty,
                });
            }
            Some(FaultKind::Crash) => {
                adj.push(FaultRecord {
                    level,
                    kind: FaultKind::Crash,
                    op: FaultOp::Rank,
                    src: rank,
                    dst: rank,
                    tag: tags::COLLECTIVE_SITE,
                    attempts: 1,
                    recovered: false,
                    penalty: SimTime::ZERO,
                });
                adj.failure = Some(NbfsError::RankFailed { rank });
                return adj;
            }
            _ => {}
        }
    }
    adj
}

fn edge_failure(
    kind: FaultKind,
    op: FaultOp,
    edge: &FaultEdge,
    level: Option<usize>,
    attempts: u32,
) -> NbfsError {
    NbfsError::Fault {
        op: op.label().to_string(),
        kind: kind.label().to_string(),
        src: edge.src,
        dst: edge.dst,
        tag: edge.round,
        level,
        attempts,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use nbfs_topology::{presets, PlacementPolicy, ProcessMap};

    fn pmap(nodes: usize, ppn: usize) -> ProcessMap {
        let m = presets::xeon_x7550_cluster(nodes);
        let policy = if ppn == m.sockets_per_node {
            PlacementPolicy::BindToSocket
        } else {
            PlacementPolicy::Interleave
        };
        ProcessMap::new(&m, ppn, policy)
    }

    fn unit_cost(rounds: u64) -> (CommCost, CollectiveStats) {
        (
            CommCost::inter_only(SimTime::from_millis(rounds as f64)),
            CollectiveStats {
                rounds,
                flows: rounds,
                wire_bytes: 1024,
                shm_bytes: 0,
                raw_bytes: 1024,
            },
        )
    }

    #[test]
    fn fates_are_pure_functions_of_seed_site_attempt() {
        let plan =
            FaultPlan::new(7).spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).rate(0.5));
        let site = FaultSite::p2p(3, 4, 11, 0);
        for attempt in 0..4 {
            assert_eq!(plan.fires(&site, attempt), plan.fires(&site, attempt));
        }
        // Different seeds decorrelate.
        let other =
            FaultPlan::new(8).spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).rate(0.5));
        let mut diverged = false;
        for s in 0..64u64 {
            let site = FaultSite::p2p(0, 1, s, 0);
            if plan.fires(&site, 0) != other.fires(&site, 0) {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 7 and 8 agree on 64 sites");
    }

    #[test]
    fn scopes_select_sites() {
        let scope = FaultScope::any().src(1).tag(5).op(FaultOp::P2p);
        assert!(scope.matches(&FaultSite::p2p(1, 2, 5, 0)));
        assert!(!scope.matches(&FaultSite::p2p(2, 2, 5, 0)));
        assert!(!scope.matches(&FaultSite::p2p(1, 2, 6, 0)));
        let level_scope = FaultScope::any().level(3);
        assert!(
            !level_scope.matches(&FaultSite::p2p(0, 1, 0, 0)),
            "p2p has no level"
        );
    }

    #[test]
    fn first_attempt_only_drops_always_recover() {
        let plan = FaultPlan::new(1).spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()));
        let edges = ring_edges(4);
        let (cost, stats) = unit_cost(3);
        let adj = inject_collective(
            &plan,
            0,
            CollectiveKind::AllgatherWords,
            &edges,
            &cost,
            &stats,
        );
        assert!(adj.failure.is_none());
        assert_eq!(adj.records.len(), edges.len(), "rate 1.0 hits every edge");
        assert!(adj.records.iter().all(|r| r.recovered && r.attempts == 2));
        assert!(adj.penalty > SimTime::ZERO);
    }

    #[test]
    fn every_attempt_drops_exhaust_the_budget() {
        let plan = FaultPlan::new(1)
            .spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).every_attempt())
            .max_attempts(3);
        let edges = ring_edges(4);
        let (cost, stats) = unit_cost(3);
        let adj = inject_collective(
            &plan,
            2,
            CollectiveKind::AllgatherWords,
            &edges,
            &cost,
            &stats,
        );
        match adj.failure {
            Some(NbfsError::Fault {
                level, attempts, ..
            }) => {
                assert_eq!(level, Some(2));
                assert_eq!(attempts, 3);
            }
            other => panic!("expected Fault, got {other:?}"),
        }
        // The failing edge is recorded, unrecovered.
        let last = adj.records.last().unwrap();
        assert!(!last.recovered);
        // Backoff is exponential: attempt budget of 3 charges base*(1+2).
        let backoff: f64 = (0..2).map(|r| plan.backoff_for(r).as_secs()).sum();
        assert!((backoff - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn crash_faults_abort_with_the_failing_edge() {
        let plan = FaultPlan::new(3).spec(FaultSpec::new(
            FaultKind::Crash,
            FaultScope::any().src(2).tag(1),
        ));
        let edges = ring_edges(4);
        let (cost, stats) = unit_cost(3);
        let adj = inject_collective(&plan, 1, CollectiveKind::Alltoallv, &edges, &cost, &stats);
        match adj.failure {
            Some(NbfsError::Fault {
                ref kind, src, tag, ..
            }) => {
                assert_eq!(kind, "crash");
                assert_eq!(src, 2);
                assert_eq!(tag, 1);
            }
            ref other => panic!("expected crash Fault, got {other:?}"),
        }
    }

    #[test]
    fn rank_faults_stall_and_crash() {
        let stall = FaultPlan::new(5).spec(FaultSpec::new(
            FaultKind::Stall,
            FaultScope::any().op(FaultOp::Rank).src(1),
        ));
        let adj = inject_rank_faults(&stall, 0, 4);
        assert!(adj.failure.is_none());
        assert_eq!(adj.records.len(), 1);
        assert_eq!(adj.penalty, stall.stall_penalty);

        let crash = FaultPlan::new(5).spec(FaultSpec::new(
            FaultKind::Crash,
            FaultScope::any().op(FaultOp::Rank).src(3),
        ));
        let adj = inject_rank_faults(&crash, 0, 4);
        assert!(matches!(
            adj.failure,
            Some(NbfsError::RankFailed { rank: 3 })
        ));
    }

    #[test]
    fn edge_schedules_cover_every_algorithm() {
        let pm = pmap(4, 8);
        let np = pm.world_size();
        let ring = allgather_edges(&pm, AllgatherAlgorithm::Ring);
        assert_eq!(ring.len(), (np - 1) * np);
        let rd = allgather_edges(&pm, AllgatherAlgorithm::RecursiveDoubling);
        assert_eq!(rd.len(), np * np.ilog2() as usize);
        let leader = allgather_edges(&pm, AllgatherAlgorithm::SharedDest);
        assert_eq!(leader.len(), 3 * 4);
        assert!(leader
            .iter()
            .all(|e| pm.is_leader(e.src) && pm.is_leader(e.dst)));
        let par = allgather_edges(&pm, AllgatherAlgorithm::ParallelSubgroup);
        assert_eq!(par.len(), 3 * 4 * 8);
        let a2a = alltoallv_edges(&pm);
        assert_eq!(a2a.len(), 4 * 3);
        let red = allreduce_edges(&pm);
        assert_eq!(red.len(), 4 * 2);
        // Single-rank / single-node worlds have no wire edges.
        let solo = pmap(1, 1);
        assert!(allgather_edges(&solo, AllgatherAlgorithm::Ring).is_empty());
        assert!(alltoallv_edges(&solo).is_empty());
        assert!(allreduce_edges(&solo).is_empty());
    }

    #[test]
    fn uncovered_ops_short_circuit() {
        let plan = FaultPlan::new(9).spec(FaultSpec::new(
            FaultKind::Drop,
            FaultScope::any().op(FaultOp::P2p),
        ));
        let edges = ring_edges(8);
        let (cost, stats) = unit_cost(7);
        let adj = inject_collective(
            &plan,
            0,
            CollectiveKind::AllgatherWords,
            &edges,
            &cost,
            &stats,
        );
        assert!(adj.is_clean());
        assert!(inject_rank_faults(&plan, 0, 8).is_clean());
    }
}
