//! A functional SPMD runtime: ranks as threads with mailboxes.
//!
//! This is the "MPI process" half of the substitution: each rank is an OS
//! thread, point-to-point messages travel over channels, and barriers are
//! real barriers. It demonstrates the programming surface the paper's code
//! uses (send/recv/barrier/allgather) with genuine concurrency; the BFS
//! engine itself uses the deterministic BSP collectives of
//! [`crate::allgather`] so that simulated clocks are reproducible, but
//! integration tests run the same frontier exchange on this runtime to show
//! both agree.
//!
//! Every fallible operation returns [`nbfs_util::Result`]: a disconnected
//! channel mid-run surfaces as [`NbfsError::Comm`] instead of a panic, and
//! a rank that panics (or crashes via fault injection) degrades the world
//! to [`NbfsError::RankFailed`] — tombstone control messages plus a
//! departable barrier guarantee the survivors error out rather than hang.
//! Each context also counts the point-to-point traffic it sends
//! ([`RankCtx::traffic`]) so runtime-level tests and demos can report
//! message/byte volumes next to the simulated collective costs.
//!
//! # Fault injection
//!
//! [`run_spmd_faulted`] threads a [`FaultPlan`] through every send: drops
//! retry with exponential backoff under a bounded budget, duplicates and
//! reorders are absorbed by per-sender sequence numbers on the receive
//! side, delays and stalls charge simulated penalties, and crashes kill
//! the rank. Fates are resolved **sender-side only** — each rank's send
//! sequence is deterministic, so the merged fault log is identical across
//! runs and thread interleavings; receive-side recovery (dedup,
//! resequencing) is deliberately silent because arrival interleaving is
//! not deterministic.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use nbfs_trace::{FaultKind, FaultOp, FaultRecord};
use nbfs_util::{NbfsError, Result, SimTime};
use parking_lot::Mutex;

use crate::fault::{FaultPlan, FaultSite};
use crate::tags;

/// A point-to-point message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// User tag for matching.
    pub tag: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Per-(sender, destination) sequence number; lets receivers discard
    /// duplicates and resequence reordered arrivals under fault injection.
    pub seq: u64,
}

/// Point-to-point traffic counters of one rank context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
}

/// A generation barrier ranks can *depart* from: when a rank dies, waiters
/// are released with [`NbfsError::RankFailed`] instead of blocking forever
/// on an arrival that will never come. Spin-yield keeps it free of poisoning
/// (the vendored `parking_lot` has no `Condvar`); worlds are small thread
/// counts, and only tests/examples drive this runtime.
struct WorldBarrier {
    inner: Mutex<BarrierState>,
}

struct BarrierState {
    arrived: usize,
    alive: usize,
    generation: u64,
    failed: Option<usize>,
}

impl WorldBarrier {
    fn new(world: usize) -> WorldBarrier {
        WorldBarrier {
            inner: Mutex::new(BarrierState {
                arrived: 0,
                alive: world,
                generation: 0,
                failed: None,
            }),
        }
    }

    fn wait(&self) -> Result<()> {
        let gen = {
            let mut s = self.inner.lock();
            if let Some(rank) = s.failed {
                return Err(NbfsError::RankFailed { rank });
            }
            s.arrived += 1;
            if s.arrived >= s.alive {
                s.arrived = 0;
                s.generation = s.generation.wrapping_add(1);
                return Ok(());
            }
            s.generation
        };
        loop {
            std::thread::yield_now();
            let s = self.inner.lock();
            // Generation moved: the barrier completed normally while we
            // were out of the lock.
            if s.generation != gen {
                return Ok(());
            }
            if let Some(rank) = s.failed {
                return Err(NbfsError::RankFailed { rank });
            }
        }
    }

    /// Permanently removes `rank` from the world; current and future
    /// waiters observe the failure instead of hanging.
    fn depart(&self, rank: usize) {
        let mut s = self.inner.lock();
        s.alive = s.alive.saturating_sub(1);
        if s.failed.is_none() {
            s.failed = Some(rank);
        }
    }
}

/// Per-send fate after drop retries are resolved.
enum P2pFate {
    Deliver,
    DeliverTwice,
    Hold,
}

struct FaultCtx {
    plan: Arc<FaultPlan>,
    log: Vec<FaultRecord>,
    penalty: SimTime,
}

/// Per-rank communication context handed to the SPMD body.
pub struct RankCtx {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    stash: VecDeque<Message>,
    barrier: Arc<WorldBarrier>,
    traffic: RankTraffic,
    /// Next sequence number per destination.
    send_seq: Vec<u64>,
    /// Next expected sequence number per sender (fault mode only).
    expect_seq: Vec<u64>,
    /// Out-of-sequence arrivals awaiting their gap (fault mode only).
    out_of_seq: Vec<Message>,
    /// One-slot hold-back buffer implementing the reorder fault.
    held: Option<(usize, Message)>,
    /// Peers observed dead via tombstones.
    dead: Vec<bool>,
    /// This rank died (crash fault fired).
    crashed: bool,
    faults: Option<FaultCtx>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Traffic this context has sent so far.
    pub fn traffic(&self) -> RankTraffic {
        self.traffic
    }

    /// Faults this rank's sends have resolved so far (sender-side log;
    /// deterministic for a given plan and body).
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.faults.as_ref().map_or(&[], |f| f.log.as_slice())
    }

    /// Total simulated penalty charged to this rank's sends.
    pub fn fault_penalty(&self) -> SimTime {
        self.faults.as_ref().map_or(SimTime::ZERO, |f| f.penalty)
    }

    fn log_fault(&mut self, record: FaultRecord) {
        if let Some(f) = self.faults.as_mut() {
            f.penalty += record.penalty;
            f.log.push(record);
        }
    }

    /// Sends `payload` to rank `to` with `tag`. Non-blocking (buffered).
    ///
    /// Under fault injection the send may retry (drops), duplicate,
    /// be held back one slot (reorder), or kill this rank (crash); an
    /// exhausted retry budget surfaces as [`NbfsError::Fault`].
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<u8>) -> Result<()> {
        if self.crashed {
            return Err(NbfsError::RankFailed { rank: self.rank });
        }
        if tag == tags::TOMBSTONE {
            return Err(NbfsError::comm(
                "tag u64::MAX is reserved for runtime control",
            ));
        }
        if self.senders.get(to).is_none() {
            return Err(NbfsError::comm(format!("send to rank {to} outside world")));
        }
        if self.dead.get(to).copied().unwrap_or(false) {
            return Err(NbfsError::RankFailed { rank: to });
        }
        let seq = self.send_seq[to];
        self.send_seq[to] += 1;
        let msg = Message {
            from: self.rank,
            tag,
            payload,
            seq,
        };
        match self.resolve_p2p_fate(to, tag, seq)? {
            P2pFate::Deliver => {
                self.deliver(to, msg)?;
                self.flush_held()?;
            }
            P2pFate::DeliverTwice => {
                self.deliver(to, msg.clone())?;
                self.deliver(to, msg)?;
                self.flush_held()?;
            }
            P2pFate::Hold => {
                // One-slot buffer: a previously held message goes out
                // first, then this one waits to be overtaken.
                self.flush_held()?;
                self.held = Some((to, msg));
            }
        }
        Ok(())
    }

    /// Resolves the fate of one send, charging retries and backoff.
    fn resolve_p2p_fate(&mut self, to: usize, tag: u64, seq: u64) -> Result<P2pFate> {
        let Some(plan) = self.faults.as_ref().map(|f| Arc::clone(&f.plan)) else {
            return Ok(P2pFate::Deliver);
        };
        if !plan.covers(FaultOp::P2p) {
            return Ok(P2pFate::Deliver);
        }
        let site = FaultSite::p2p(self.rank, to, tag, seq);
        let record =
            |kind: FaultKind, attempts: u32, recovered: bool, penalty: SimTime| FaultRecord {
                level: 0,
                kind,
                op: FaultOp::P2p,
                src: site.src,
                dst: site.dst,
                tag,
                attempts,
                recovered,
                penalty,
            };
        let mut attempt: u32 = 0;
        let mut penalty = SimTime::ZERO;
        loop {
            let Some(fate) = plan.fires(&site, attempt) else {
                if attempt > 0 {
                    self.log_fault(record(FaultKind::Drop, attempt + 1, true, penalty));
                }
                return Ok(P2pFate::Deliver);
            };
            match fate {
                FaultKind::Drop => {
                    penalty += plan.backoff_for(attempt);
                    attempt += 1;
                    if attempt >= plan.max_attempts {
                        self.log_fault(record(FaultKind::Drop, attempt, false, penalty));
                        return Err(NbfsError::Fault {
                            op: "p2p".to_string(),
                            kind: FaultKind::Drop.label().to_string(),
                            src: self.rank,
                            dst: to,
                            tag,
                            level: None,
                            attempts: attempt,
                        });
                    }
                }
                FaultKind::Delay => {
                    penalty += plan.delay_penalty;
                    self.log_fault(record(FaultKind::Delay, attempt + 1, true, penalty));
                    return Ok(P2pFate::Deliver);
                }
                FaultKind::Duplicate => {
                    self.log_fault(record(FaultKind::Duplicate, attempt + 1, true, penalty));
                    return Ok(P2pFate::DeliverTwice);
                }
                FaultKind::Reorder => {
                    self.log_fault(record(FaultKind::Reorder, attempt + 1, true, penalty));
                    return Ok(P2pFate::Hold);
                }
                FaultKind::Stall => {
                    penalty += plan.stall_penalty;
                    self.log_fault(record(FaultKind::Stall, attempt + 1, true, penalty));
                    return Ok(P2pFate::Deliver);
                }
                FaultKind::Crash => {
                    self.log_fault(record(FaultKind::Crash, attempt + 1, false, penalty));
                    self.depart_world();
                    return Err(NbfsError::RankFailed { rank: self.rank });
                }
            }
        }
    }

    /// Physically enqueues a message and counts it.
    fn deliver(&mut self, to: usize, msg: Message) -> Result<()> {
        let bytes = msg.payload.len() as u64;
        self.senders
            .get(to)
            .ok_or_else(|| NbfsError::comm(format!("send to rank {to} outside world")))?
            .send(msg)
            .map_err(|_| NbfsError::comm(format!("send to rank {to}: receiver thread gone")))?;
        self.traffic.messages_sent += 1;
        self.traffic.bytes_sent += bytes;
        Ok(())
    }

    /// Delivers a held (reordered) message, if any. Called before every
    /// blocking receive and barrier, and after the body returns, so a held
    /// message is never lost.
    fn flush_held(&mut self) -> Result<()> {
        if let Some((to, msg)) = self.held.take() {
            if !self.dead.get(to).copied().unwrap_or(false) {
                self.deliver(to, msg)?;
            }
        }
        Ok(())
    }

    /// Marks this rank dead: tombstones to every peer (so their receives
    /// fail fast instead of hanging) and departure from the barrier.
    fn depart_world(&mut self) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.held = None;
        for to in 0..self.world {
            if to == self.rank {
                continue;
            }
            if let Some(sender) = self.senders.get(to) {
                let _ = sender.send(Message {
                    from: self.rank,
                    tag: tags::TOMBSTONE,
                    payload: Vec::new(),
                    seq: u64::MAX,
                });
            }
        }
        self.barrier.depart(self.rank);
    }

    /// Receives the next message matching `(from, tag)`, blocking until it
    /// arrives. Unmatched messages are stashed for later `recv`s. If
    /// `from` dies first, returns [`NbfsError::RankFailed`] instead of
    /// hanging.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>> {
        Ok(self
            .recv_where(|m| m.from == from && m.tag == tag, Some(from))?
            .payload)
    }

    /// Receives the next message satisfying `pred`, stashing everything
    /// that does not match. The single blocking receive both `recv` and
    /// `recv_any` funnel through. `waiting_on` names the peer a failure of
    /// which makes the wait unsatisfiable (`None`: any peer — used by
    /// wildcard receives, which cannot complete once any rank died).
    fn recv_where(
        &mut self,
        pred: impl Fn(&Message) -> bool,
        waiting_on: Option<usize>,
    ) -> Result<Message> {
        if self.crashed {
            return Err(NbfsError::RankFailed { rank: self.rank });
        }
        self.flush_held()?;
        loop {
            if let Some(pos) = self.stash.iter().position(&pred) {
                if let Some(m) = self.stash.remove(pos) {
                    return Ok(m);
                }
            }
            // Channels are FIFO per sender, and the tombstone is the last
            // thing a dying rank sends — so once a peer is marked dead,
            // everything it ever sent has been admitted, and an
            // unsatisfied wait on it can never complete.
            match waiting_on {
                Some(peer) => {
                    if self.dead.get(peer).copied().unwrap_or(false) {
                        return Err(NbfsError::RankFailed { rank: peer });
                    }
                }
                None => {
                    if let Some(peer) = self.dead.iter().position(|&d| d) {
                        return Err(NbfsError::RankFailed { rank: peer });
                    }
                }
            }
            // Every rank keeps a Sender to its own channel in
            // `self.senders`, so this can only fail if the runtime is torn
            // down mid-call — surfaced as an error, not a panic.
            let msg = self
                .receiver
                .recv()
                .map_err(|_| NbfsError::comm("rank channel disconnected mid-receive"))?;
            self.admit(msg);
        }
    }

    /// Routes one arrival: tombstones mark peers dead; under fault
    /// injection, per-sender sequence numbers discard duplicates and
    /// resequence reordered messages before they reach the stash.
    fn admit(&mut self, msg: Message) {
        if msg.tag == tags::TOMBSTONE {
            if let Some(flag) = self.dead.get_mut(msg.from) {
                *flag = true;
            }
            return;
        }
        if self.faults.is_none() {
            self.stash.push_back(msg);
            return;
        }
        let from = msg.from;
        let Some(expect) = self.expect_seq.get_mut(from) else {
            self.stash.push_back(msg);
            return;
        };
        if msg.seq < *expect {
            return; // duplicate — already admitted
        }
        if msg.seq > *expect {
            self.out_of_seq.push(msg); // gap — wait for the overtaken one
            return;
        }
        *expect += 1;
        self.stash.push_back(msg);
        // Drain any stashed successors that are now in sequence.
        loop {
            let next = self.expect_seq[from];
            let Some(pos) = self
                .out_of_seq
                .iter()
                .position(|m| m.from == from && m.seq == next)
            else {
                break;
            };
            let m = self.out_of_seq.swap_remove(pos);
            self.expect_seq[from] += 1;
            self.stash.push_back(m);
        }
    }

    /// Waits for every live rank to arrive. If any rank died, returns
    /// [`NbfsError::RankFailed`] instead of hanging.
    pub fn barrier(&mut self) -> Result<()> {
        if self.crashed {
            return Err(NbfsError::RankFailed { rank: self.rank });
        }
        self.flush_held()?;
        self.barrier.wait()
    }

    /// Gathers every rank's contribution at `root`, in rank order; other
    /// ranks receive an empty vector.
    pub fn gather_bytes(&mut self, mine: Vec<u8>, root: usize, tag: u64) -> Result<Vec<Vec<u8>>> {
        if self.rank == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.world];
            out[root] = mine;
            for _ in 0..self.world - 1 {
                let msg = self.recv_any(tag)?;
                out[msg.0] = msg.1;
            }
            Ok(out)
        } else {
            self.send(root, tag, mine)?;
            Ok(Vec::new())
        }
    }

    /// Receives the next message with `tag` from any rank, returning
    /// `(sender, payload)`.
    fn recv_any(&mut self, tag: u64) -> Result<(usize, Vec<u8>)> {
        let m = self.recv_where(|m| m.tag == tag, None)?;
        Ok((m.from, m.payload))
    }

    /// Broadcasts `payload` from `root` via a binomial tree (the MPICH
    /// algorithm); every rank returns the payload. Non-roots pass `None`.
    pub fn broadcast_bytes(
        &mut self,
        payload: Option<Vec<u8>>,
        root: usize,
        tag: u64,
    ) -> Result<Vec<u8>> {
        let np = self.world;
        // Rotate so the root is virtual rank 0. A non-root receives from
        // `vrank - lsb(vrank)` (its parent clears the lowest set bit), then
        // forwards to `vrank + m` for every m = 2^k below that bit.
        let vrank = (self.rank + np - root) % np;
        let mut mask = 1usize;
        let mut data = payload;
        if vrank != 0 {
            while vrank & mask == 0 {
                mask <<= 1;
            }
            let from = (vrank - mask + root) % np;
            data = Some(self.recv(from, tag)?);
        } else {
            mask = np.next_power_of_two();
        }
        let data = data.ok_or_else(|| NbfsError::comm("broadcast root supplied no payload"))?;
        let mut m = mask >> 1;
        while m > 0 {
            if vrank + m < np {
                let to = (vrank + m + root) % np;
                self.send(to, tag, data.clone())?;
            }
            m >>= 1;
        }
        Ok(data)
    }

    /// A simple ring allgather built from send/recv: returns every rank's
    /// contribution, in rank order.
    pub fn allgather_bytes(&mut self, mine: Vec<u8>, tag: u64) -> Result<Vec<Vec<u8>>> {
        let np = self.world;
        let mut have: Vec<Vec<u8>> = vec![Vec::new(); np];
        let next = (self.rank + 1) % np;
        let prev = (self.rank + np - 1) % np;
        // Round `r` forwards the chunk received in round `r - 1` (round 0
        // forwards our own contribution), so the value to send is always
        // in hand — no Option slots, nothing to unwrap.
        let mut outgoing = mine.clone();
        have[self.rank] = mine;
        for r in 0..np.saturating_sub(1) {
            self.send(next, tags::ring_round(tag, r), outgoing)?;
            let recv_idx = (prev + np - r) % np;
            let got = self.recv(prev, tags::ring_round(tag, r))?;
            have[recv_idx] = got.clone();
            outgoing = got;
        }
        Ok(have)
    }
}

/// The results of a faulted SPMD run: per-rank outcomes plus the merged
/// sender-side fault log (rank order, so it is deterministic for a given
/// plan and body).
#[derive(Debug)]
pub struct SpmdOutcome<R> {
    /// Each rank's result, in rank order.
    pub results: Vec<Result<R>>,
    /// Every fault resolved by any rank's sends, in rank order.
    pub faults: Vec<FaultRecord>,
    /// Total simulated penalty charged across the world.
    pub fault_penalty: SimTime,
}

impl<R> SpmdOutcome<R> {
    /// The first failed rank's error, if any rank failed.
    pub fn first_error(&self) -> Option<&NbfsError> {
        self.results.iter().find_map(|r| r.as_ref().err())
    }
}

/// Shared driver behind [`run_spmd`] and [`run_spmd_faulted`]: spawns the
/// world, converts per-rank panics into [`NbfsError::RankFailed`], and
/// makes every failing rank depart loudly (tombstones + barrier) so the
/// survivors never hang on it.
fn spawn_world<F, R>(world: usize, plan: Option<Arc<FaultPlan>>, body: F) -> SpmdOutcome<R>
where
    F: Fn(&mut RankCtx) -> Result<R> + Sync,
    R: Send,
{
    assert!(world >= 1, "world must be non-empty");
    let channels: Vec<(Sender<Message>, Receiver<Message>)> =
        (0..world).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Message>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let barrier = Arc::new(WorldBarrier::new(world));

    type Slot<R> = (Result<R>, Vec<FaultRecord>, SimTime);
    let slots: Vec<Mutex<Option<Slot<R>>>> = (0..world).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (rank, (_, receiver)) in channels.iter().enumerate() {
            let mut ctx = RankCtx {
                rank,
                world,
                senders: senders.clone(),
                receiver: receiver.clone(),
                stash: VecDeque::new(),
                barrier: Arc::clone(&barrier),
                traffic: RankTraffic::default(),
                send_seq: vec![0; world],
                expect_seq: vec![0; world],
                out_of_seq: Vec::new(),
                held: None,
                dead: vec![false; world],
                crashed: false,
                faults: plan.as_ref().map(|p| FaultCtx {
                    plan: Arc::clone(p),
                    log: Vec::new(),
                    penalty: SimTime::ZERO,
                }),
            };
            let body = &body;
            let slot = &slots[rank];
            scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                let result = match outcome {
                    Ok(r) => r.and_then(|v| {
                        ctx.flush_held()?;
                        Ok(v)
                    }),
                    Err(_) => Err(NbfsError::RankFailed { rank: ctx.rank }),
                };
                if result.is_err() {
                    ctx.depart_world();
                }
                let (log, penalty) = match ctx.faults.take() {
                    Some(f) => (f.log, f.penalty),
                    None => (Vec::new(), SimTime::ZERO),
                };
                *slot.lock() = Some((result, log, penalty));
            });
        }
    });

    let mut results = Vec::with_capacity(world);
    let mut faults = Vec::new();
    let mut fault_penalty = SimTime::ZERO;
    for (rank, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some((result, log, penalty)) => {
                results.push(result);
                faults.extend(log);
                fault_penalty += penalty;
            }
            None => results.push(Err(NbfsError::comm(format!("rank {rank} did not finish")))),
        }
    }
    SpmdOutcome {
        results,
        faults,
        fault_penalty,
    }
}

/// Runs `body` on `world` rank threads and collects their results in rank
/// order. A rank that panics surfaces as [`NbfsError::RankFailed`] (the
/// lowest failed rank's error is returned) — the rest of the world is
/// released via tombstones and barrier departure, never poisoned or hung.
pub fn run_spmd<F, R>(world: usize, body: F) -> Result<Vec<R>>
where
    F: Fn(&mut RankCtx) -> R + Sync,
    R: Send,
{
    spawn_world(world, None, |ctx| Ok(body(ctx)))
        .results
        .into_iter()
        .collect()
}

/// Runs `body` on `world` rank threads under a [`FaultPlan`], returning
/// per-rank results plus the merged (deterministic, sender-side) fault
/// log. Bodies are fallible so injected failures propagate structurally.
pub fn run_spmd_faulted<F, R>(world: usize, plan: &FaultPlan, body: F) -> SpmdOutcome<R>
where
    F: Fn(&mut RankCtx) -> Result<R> + Sync,
    R: Send,
{
    spawn_world(world, Some(Arc::new(plan.clone())), body)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::fault::{FaultScope, FaultSpec};

    #[test]
    fn ranks_identify_themselves() {
        let out = run_spmd(8, |ctx| (ctx.rank(), ctx.world())).unwrap();
        for (i, (rank, world)) in out.iter().enumerate() {
            assert_eq!(*rank, i);
            assert_eq!(*world, 8);
        }
    }

    #[test]
    fn ring_message_passing() {
        let out = run_spmd(4, |ctx| {
            let next = (ctx.rank() + 1) % ctx.world();
            let prev = (ctx.rank() + ctx.world() - 1) % ctx.world();
            ctx.send(next, tags::testing::RING_PASS, vec![ctx.rank() as u8])
                .unwrap();
            ctx.recv(prev, tags::testing::RING_PASS).unwrap()
        })
        .unwrap();
        assert_eq!(out, vec![vec![3], vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run_spmd(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, tags::testing::STASH_LOW, vec![1]).unwrap();
                ctx.send(1, tags::testing::STASH_HIGH, vec![2]).unwrap();
                vec![]
            } else {
                // Receive in the reverse order of sending.
                let b = ctx.recv(0, tags::testing::STASH_HIGH).unwrap();
                let a = ctx.recv(0, tags::testing::STASH_LOW).unwrap();
                vec![a[0], b[0]]
            }
        })
        .unwrap();
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_spmd(8, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier().unwrap();
            // After the barrier every rank's increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_at_root_only() {
        let out = run_spmd(5, |ctx| {
            ctx.gather_bytes(vec![ctx.rank() as u8], 2, tags::testing::GATHER_DEMO)
                .unwrap()
        })
        .unwrap();
        for (rank, view) in out.iter().enumerate() {
            if rank == 2 {
                let expect: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8]).collect();
                assert_eq!(view, &expect);
            } else {
                assert!(view.is_empty());
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_rank_from_any_root() {
        for world in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, world - 1, world / 2] {
                let out = run_spmd(world, |ctx| {
                    let payload = (ctx.rank() == root).then(|| vec![0xAB, root as u8]);
                    ctx.broadcast_bytes(payload, root, tags::testing::BCAST_DEMO)
                        .unwrap()
                })
                .unwrap();
                for (rank, got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        &vec![0xAB, root as u8],
                        "world {world} root {root} rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn allgather_bytes_collects_in_rank_order() {
        let out = run_spmd(6, |ctx| {
            let mine = vec![ctx.rank() as u8; ctx.rank() + 1]; // ragged sizes
            ctx.allgather_bytes(mine, tags::testing::ALLGATHER_RAGGED)
                .unwrap()
        })
        .unwrap();
        let expect: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; i as usize + 1]).collect();
        for rank_view in out {
            assert_eq!(rank_view, expect);
        }
    }

    #[test]
    fn single_rank_world() {
        let out = run_spmd(1, |ctx| {
            ctx.allgather_bytes(vec![42], tags::testing::ALLGATHER_SOLO)
                .unwrap()
        })
        .unwrap();
        assert_eq!(out[0], vec![vec![42]]);
    }

    #[test]
    fn send_outside_world_is_an_error_not_a_panic() {
        let out = run_spmd(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(5, tags::testing::OUT_OF_WORLD, vec![0]).is_err()
            } else {
                true
            }
        })
        .unwrap();
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn traffic_counters_track_ring_allgather() {
        // A ring allgather over np ranks sends np-1 messages per rank.
        let np = 4usize;
        let out = run_spmd(np, |ctx| {
            let mine = vec![0u8; 8];
            ctx.allgather_bytes(mine, tags::testing::TRAFFIC_PROBE)
                .unwrap();
            ctx.traffic()
        })
        .unwrap();
        for t in out {
            assert_eq!(t.messages_sent, (np - 1) as u64);
            assert_eq!(t.bytes_sent, 8 * (np - 1) as u64);
        }
    }

    // --- panic conversion & fault injection -----------------------------

    #[test]
    fn panic_in_one_rank_becomes_rank_failed_not_a_hang() {
        // Regression: a panicking rank used to poison the shared barrier
        // (survivors hung or the whole scope unwound). Now the panic is
        // caught, the rank departs loudly, and the caller sees a
        // structured error for exactly that rank.
        // nbfs-analysis: rank-local
        // (Rank asymmetry is the point of this test: rank 2 panics before
        // the barrier, survivors must still depart it with RankFailed.)
        let out = run_spmd(4, |ctx| {
            if ctx.rank() == 2 {
                panic!("injected panic");
            }
            // Survivors' barrier fails fast instead of hanging.
            let b = ctx.barrier();
            assert!(matches!(b, Err(NbfsError::RankFailed { rank: 2 })));
            ctx.rank()
        });
        // nbfs-analysis: end-rank-local
        assert!(matches!(out, Err(NbfsError::RankFailed { rank: 2 })));
    }

    #[test]
    fn dropped_sends_recover_and_are_logged() {
        // First-attempt-only drops with rate 1.0: every send drops once,
        // every retry succeeds, results are identical to fault-free.
        let plan = FaultPlan::new(11).spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()));
        let out = run_spmd_faulted(4, &plan, |ctx| {
            ctx.allgather_bytes(vec![ctx.rank() as u8], tags::testing::FAULT_PROBE)
        });
        let expect: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8]).collect();
        for r in &out.results {
            assert_eq!(r.as_ref().unwrap(), &expect);
        }
        // 3 sends per rank, each dropped once then recovered.
        assert_eq!(out.faults.len(), 12);
        assert!(out
            .faults
            .iter()
            .all(|f| f.kind == FaultKind::Drop && f.recovered && f.attempts == 2));
        assert!(out.fault_penalty > SimTime::ZERO);
    }

    #[test]
    fn duplicates_and_reorders_are_absorbed_by_sequencing() {
        for kind in [FaultKind::Duplicate, FaultKind::Reorder] {
            let plan = FaultPlan::new(3).spec(FaultSpec::new(kind, FaultScope::any()));
            let out = run_spmd_faulted(4, &plan, |ctx| {
                ctx.allgather_bytes(vec![ctx.rank() as u8], tags::testing::FAULT_PROBE)
            });
            let expect: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8]).collect();
            for r in &out.results {
                assert_eq!(r.as_ref().unwrap(), &expect, "{kind:?}");
            }
            assert!(out.faults.iter().all(|f| f.kind == kind && f.recovered));
        }
    }

    #[test]
    fn exhausted_retry_budget_is_a_structured_error() {
        let plan = FaultPlan::new(1)
            .spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).every_attempt())
            .max_attempts(3);
        let out = run_spmd_faulted(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, tags::testing::RETRY_PROBE, vec![1])?;
            }
            Ok(())
        });
        match out.results[0].as_ref().unwrap_err() {
            NbfsError::Fault { op, attempts, .. } => {
                assert_eq!(op, "p2p");
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected Fault, got {other:?}"),
        }
    }

    #[test]
    fn crashed_rank_degrades_peers_to_errors_not_hangs() {
        let plan =
            FaultPlan::new(2).spec(FaultSpec::new(FaultKind::Crash, FaultScope::any().src(1)));
        let out = run_spmd_faulted(3, &plan, |ctx| {
            let next = (ctx.rank() + 1) % ctx.world();
            let prev = (ctx.rank() + ctx.world() - 1) % ctx.world();
            ctx.send(next, tags::testing::CRASH_RING, vec![ctx.rank() as u8])?;
            ctx.recv(prev, tags::testing::CRASH_RING)
        });
        // Rank 1 crashed on its send; rank 2 was waiting on rank 1.
        assert!(matches!(
            out.results[1],
            Err(NbfsError::RankFailed { rank: 1 })
        ));
        assert!(matches!(
            out.results[2],
            Err(NbfsError::RankFailed { rank: 1 })
        ));
        // Completing at all (under a test harness timeout) proves no hang.
        assert_eq!(out.faults.len(), 1);
        assert_eq!(out.faults[0].kind, FaultKind::Crash);
    }

    #[test]
    fn fault_logs_are_deterministic_across_runs() {
        let plan = FaultPlan::new(42)
            .spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).rate(0.3))
            .spec(FaultSpec::new(FaultKind::Delay, FaultScope::any()).rate(0.2));
        let run = || {
            run_spmd_faulted(4, &plan, |ctx| {
                ctx.allgather_bytes(vec![ctx.rank() as u8; 3], tags::testing::DETERMINISM_RING)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.fault_penalty, b.fault_penalty);
        assert!(a.results.iter().all(Result::is_ok));
    }

    #[test]
    fn reserved_tag_is_rejected() {
        let out = run_spmd(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, tags::TOMBSTONE, vec![]).is_err()
            } else {
                true
            }
        })
        .unwrap();
        assert!(out[0]);
    }
}
