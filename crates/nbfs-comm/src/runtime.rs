//! A functional SPMD runtime: ranks as threads with mailboxes.
//!
//! This is the "MPI process" half of the substitution: each rank is an OS
//! thread, point-to-point messages travel over channels, and barriers are
//! real barriers. It demonstrates the programming surface the paper's code
//! uses (send/recv/barrier/allgather) with genuine concurrency; the BFS
//! engine itself uses the deterministic BSP collectives of
//! [`crate::allgather`] so that simulated clocks are reproducible, but
//! integration tests run the same frontier exchange on this runtime to show
//! both agree.
//!
//! Every fallible operation returns [`nbfs_util::Result`]: a disconnected
//! channel mid-run surfaces as [`NbfsError::Comm`] instead of a panic.
//! Each context also counts the point-to-point traffic it sends
//! ([`RankCtx::traffic`]) so runtime-level tests and demos can report
//! message/byte volumes next to the simulated collective costs.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use nbfs_util::{NbfsError, Result};
use parking_lot::Mutex;

/// A point-to-point message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// User tag for matching.
    pub tag: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Point-to-point traffic counters of one rank context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// Messages sent by this rank.
    pub messages_sent: u64,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
}

/// Per-rank communication context handed to the SPMD body.
pub struct RankCtx {
    rank: usize,
    world: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    stash: VecDeque<Message>,
    barrier: Arc<std::sync::Barrier>,
    traffic: RankTraffic,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Traffic this context has sent so far.
    pub fn traffic(&self) -> RankTraffic {
        self.traffic
    }

    /// Sends `payload` to rank `to` with `tag`. Non-blocking (buffered).
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<u8>) -> Result<()> {
        let bytes = payload.len() as u64;
        self.senders
            .get(to)
            .ok_or_else(|| NbfsError::comm(format!("send to rank {to} outside world")))?
            .send(Message {
                from: self.rank,
                tag,
                payload,
            })
            .map_err(|_| NbfsError::comm(format!("send to rank {to}: receiver thread gone")))?;
        self.traffic.messages_sent += 1;
        self.traffic.bytes_sent += bytes;
        Ok(())
    }

    /// Receives the next message matching `(from, tag)`, blocking until it
    /// arrives. Unmatched messages are stashed for later `recv`s.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Vec<u8>> {
        Ok(self.recv_where(|m| m.from == from && m.tag == tag)?.payload)
    }

    /// Receives the next message satisfying `pred`, stashing everything
    /// that does not match. The single blocking receive both `recv` and
    /// `recv_any` funnel through.
    fn recv_where(&mut self, pred: impl Fn(&Message) -> bool) -> Result<Message> {
        if let Some(pos) = self.stash.iter().position(&pred) {
            if let Some(m) = self.stash.remove(pos) {
                return Ok(m);
            }
        }
        loop {
            // Every rank keeps a Sender to its own channel in
            // `self.senders`, so this can only fail if the runtime is torn
            // down mid-call — surfaced as an error, not a panic.
            let msg = self
                .receiver
                .recv()
                .map_err(|_| NbfsError::comm("rank channel disconnected mid-receive"))?;
            if pred(&msg) {
                return Ok(msg);
            }
            self.stash.push_back(msg);
        }
    }

    /// Waits for every rank to arrive.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gathers every rank's contribution at `root`, in rank order; other
    /// ranks receive an empty vector.
    pub fn gather_bytes(&mut self, mine: Vec<u8>, root: usize, tag: u64) -> Result<Vec<Vec<u8>>> {
        if self.rank == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.world];
            out[root] = mine;
            for _ in 0..self.world - 1 {
                let msg = self.recv_any(tag)?;
                out[msg.0] = msg.1;
            }
            Ok(out)
        } else {
            self.send(root, tag, mine)?;
            Ok(Vec::new())
        }
    }

    /// Receives the next message with `tag` from any rank, returning
    /// `(sender, payload)`.
    fn recv_any(&mut self, tag: u64) -> Result<(usize, Vec<u8>)> {
        let m = self.recv_where(|m| m.tag == tag)?;
        Ok((m.from, m.payload))
    }

    /// Broadcasts `payload` from `root` via a binomial tree (the MPICH
    /// algorithm); every rank returns the payload. Non-roots pass `None`.
    pub fn broadcast_bytes(
        &mut self,
        payload: Option<Vec<u8>>,
        root: usize,
        tag: u64,
    ) -> Result<Vec<u8>> {
        let np = self.world;
        // Rotate so the root is virtual rank 0. A non-root receives from
        // `vrank - lsb(vrank)` (its parent clears the lowest set bit), then
        // forwards to `vrank + m` for every m = 2^k below that bit.
        let vrank = (self.rank + np - root) % np;
        let mut mask = 1usize;
        let mut data = payload;
        if vrank != 0 {
            while vrank & mask == 0 {
                mask <<= 1;
            }
            let from = (vrank - mask + root) % np;
            data = Some(self.recv(from, tag)?);
        } else {
            mask = np.next_power_of_two();
        }
        let data = data.ok_or_else(|| NbfsError::comm("broadcast root supplied no payload"))?;
        let mut m = mask >> 1;
        while m > 0 {
            if vrank + m < np {
                let to = (vrank + m + root) % np;
                self.send(to, tag, data.clone())?;
            }
            m >>= 1;
        }
        Ok(data)
    }

    /// A simple ring allgather built from send/recv: returns every rank's
    /// contribution, in rank order.
    pub fn allgather_bytes(&mut self, mine: Vec<u8>, tag: u64) -> Result<Vec<Vec<u8>>> {
        let np = self.world;
        let mut have: Vec<Vec<u8>> = vec![Vec::new(); np];
        let next = (self.rank + 1) % np;
        let prev = (self.rank + np - 1) % np;
        // Round `r` forwards the chunk received in round `r - 1` (round 0
        // forwards our own contribution), so the value to send is always
        // in hand — no Option slots, nothing to unwrap.
        let mut outgoing = mine.clone();
        have[self.rank] = mine;
        for r in 0..np.saturating_sub(1) {
            self.send(next, tag.wrapping_add(r as u64), outgoing)?;
            let recv_idx = (prev + np - r) % np;
            let got = self.recv(prev, tag.wrapping_add(r as u64))?;
            have[recv_idx] = got.clone();
            outgoing = got;
        }
        Ok(have)
    }
}

/// Runs `body` on `world` rank threads and collects their results in rank
/// order. Panics in any rank propagate; a rank that exits without
/// producing a result surfaces as [`NbfsError::Comm`].
pub fn run_spmd<F, R>(world: usize, body: F) -> Result<Vec<R>>
where
    F: Fn(&mut RankCtx) -> R + Sync,
    R: Send,
{
    assert!(world >= 1, "world must be non-empty");
    let channels: Vec<(Sender<Message>, Receiver<Message>)> =
        (0..world).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Message>> = channels.iter().map(|(s, _)| s.clone()).collect();
    let barrier = Arc::new(std::sync::Barrier::new(world));

    let results: Vec<Mutex<Option<R>>> = (0..world).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (rank, (_, receiver)) in channels.iter().enumerate() {
            let mut ctx = RankCtx {
                rank,
                world,
                senders: senders.clone(),
                receiver: receiver.clone(),
                stash: VecDeque::new(),
                barrier: Arc::clone(&barrier),
                traffic: RankTraffic::default(),
            };
            let body = &body;
            let slot = &results[rank];
            scope.spawn(move || {
                let r = body(&mut ctx);
                *slot.lock() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(rank, m)| {
            m.into_inner()
                .ok_or_else(|| NbfsError::comm(format!("rank {rank} did not finish")))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn ranks_identify_themselves() {
        let out = run_spmd(8, |ctx| (ctx.rank(), ctx.world())).unwrap();
        for (i, (rank, world)) in out.iter().enumerate() {
            assert_eq!(*rank, i);
            assert_eq!(*world, 8);
        }
    }

    #[test]
    fn ring_message_passing() {
        let out = run_spmd(4, |ctx| {
            let next = (ctx.rank() + 1) % ctx.world();
            let prev = (ctx.rank() + ctx.world() - 1) % ctx.world();
            ctx.send(next, 7, vec![ctx.rank() as u8]).unwrap();
            ctx.recv(prev, 7).unwrap()
        })
        .unwrap();
        assert_eq!(out, vec![vec![3], vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run_spmd(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1]).unwrap();
                ctx.send(1, 2, vec![2]).unwrap();
                vec![]
            } else {
                // Receive in the reverse order of sending.
                let b = ctx.recv(0, 2).unwrap();
                let a = ctx.recv(0, 1).unwrap();
                vec![a[0], b[0]]
            }
        })
        .unwrap();
        assert_eq!(out[1], vec![1, 2]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_spmd(8, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank's increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        })
        .unwrap();
    }

    #[test]
    fn gather_collects_at_root_only() {
        let out = run_spmd(5, |ctx| {
            ctx.gather_bytes(vec![ctx.rank() as u8], 2, 9).unwrap()
        })
        .unwrap();
        for (rank, view) in out.iter().enumerate() {
            if rank == 2 {
                let expect: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8]).collect();
                assert_eq!(view, &expect);
            } else {
                assert!(view.is_empty());
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_rank_from_any_root() {
        for world in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, world - 1, world / 2] {
                let out = run_spmd(world, |ctx| {
                    let payload = (ctx.rank() == root).then(|| vec![0xAB, root as u8]);
                    ctx.broadcast_bytes(payload, root, 33).unwrap()
                })
                .unwrap();
                for (rank, got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        &vec![0xAB, root as u8],
                        "world {world} root {root} rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn allgather_bytes_collects_in_rank_order() {
        let out = run_spmd(6, |ctx| {
            let mine = vec![ctx.rank() as u8; ctx.rank() + 1]; // ragged sizes
            ctx.allgather_bytes(mine, 100).unwrap()
        })
        .unwrap();
        let expect: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; i as usize + 1]).collect();
        for rank_view in out {
            assert_eq!(rank_view, expect);
        }
    }

    #[test]
    fn single_rank_world() {
        let out = run_spmd(1, |ctx| ctx.allgather_bytes(vec![42], 0).unwrap()).unwrap();
        assert_eq!(out[0], vec![vec![42]]);
    }

    #[test]
    fn send_outside_world_is_an_error_not_a_panic() {
        let out = run_spmd(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(5, 1, vec![0]).is_err()
            } else {
                true
            }
        })
        .unwrap();
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn traffic_counters_track_ring_allgather() {
        // A ring allgather over np ranks sends np-1 messages per rank.
        let np = 4usize;
        let out = run_spmd(np, |ctx| {
            let mine = vec![0u8; 8];
            ctx.allgather_bytes(mine, 3).unwrap();
            ctx.traffic()
        })
        .unwrap();
        for t in out {
            assert_eq!(t.messages_sent, (np - 1) as u64);
            assert_eq!(t.bytes_sent, 8 * (np - 1) as u64);
        }
    }
}
