//! The `nbfs` binary: thin shim over [`nbfs_cli`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match nbfs_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", nbfs_cli::usage());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = nbfs_cli::execute(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
