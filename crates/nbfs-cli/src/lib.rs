//! Implementation of the `nbfs` command-line tool.
//!
//! Subcommands (see [`usage`]):
//!
//! * `generate` — write a Graph500 R-MAT edge list to disk;
//! * `info` — degree statistics of an edge-list file;
//! * `run` — one profiled BFS on the simulated cluster, with the full
//!   Fig. 11 breakdown;
//! * `trace` — one run-event-recorded BFS: the per-level span table, the
//!   collective volume ledger and the Fig. 11 phase totals projected from
//!   the trace (optionally exported as versioned JSON);
//! * `bench` — a Graph500-style campaign (N roots, harmonic-mean TEPS);
//! * `serve-bench` — the BFS-as-a-service throughput benchmark: one seeded
//!   query stream run sequentially, batched through 64-lane bit-parallel
//!   waves, and concurrently through the admission queue (p50/p99);
//! * `tune` — the analytic summary-granularity recommendation of
//!   `nbfs_core::tuning` for a given frontier density.
//! * `chaos` — the seeded fault-injection conformance matrix: every fault
//!   kind against every communication target, with recoverable cells
//!   required to reproduce the fault-free BFS parents bit for bit and
//!   unrecoverable cells required to fail with a structured error.
//!
//! The library half exists so argument parsing and command execution are
//! unit-testable; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
// u64 offsets and counters are indexed into slices throughout; usize is
// 64 bits on every supported target (documented in DESIGN.md), so these
// casts cannot truncate. Narrowing *vertex ids* to u32/u16 is the risky
// direction, and that is gated by the nbfs-analysis NBFS005 rule instead.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

use std::path::PathBuf;

use nbfs_comm::codec::Codec;
use nbfs_comm::runtime::run_spmd_faulted;
use nbfs_comm::{FaultPlan, FaultScope, FaultSpec};
use nbfs_core::engine::{DistributedBfs, Scenario, TdStrategy};
use nbfs_core::engine2d::TwoDimBfs;
use nbfs_core::harness::{Graph500Harness, HarnessConfig};
use nbfs_core::opt::OptLevel;
use nbfs_core::profile::Phase;
use nbfs_core::query::{DistributedRunBackend, DistributedTryTracedBackend, QueryEngine};
use nbfs_graph::stats::DegreeStats;
use nbfs_graph::validate::validate_bfs_tree;
use nbfs_graph::{io, CompressedCsr, Csr, GraphBuilder, GraphView};
use nbfs_simnet::Residence;
use nbfs_topology::presets;
use nbfs_trace::{CollectiveKind, CollectiveStats, FaultKind, TraceConfig};
use nbfs_util::stats::format_teps;
use nbfs_util::units::format_bytes;
use nbfs_util::NbfsError;
use nbfs_util::{Bitmap, SimTime};
use serde::Serialize;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `generate --scale N [--edge-factor E] [--seed S] --out FILE`
    Generate {
        /// Graph500 scale (log2 vertices).
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
        /// Generator seed.
        seed: u64,
        /// Output path (`.txt`/`.el` = text, else binary).
        out: PathBuf,
    },
    /// `info FILE`
    Info {
        /// Edge-list file to inspect.
        path: PathBuf,
    },
    /// `run [--scale N | --graph FILE] [--nodes N] [--opt NAME] [--root V] [--summary-g G] [--td-alltoallv] [--codec C] [--grid RxC] [--compressed]`
    Run {
        /// Scale to generate (ignored with `--graph`).
        scale: u32,
        /// Optional edge-list file instead of generation.
        graph: Option<PathBuf>,
        /// Simulated node count.
        nodes: usize,
        /// Optimization level.
        opt: OptLevel,
        /// Root (default: max-degree vertex).
        root: Option<usize>,
        /// Summary-bitmap granularity override (Fig. 16 sweep); default is
        /// the opt rung's own granularity.
        summary_g: Option<usize>,
        /// Use the mpi_simple-style alltoallv top-down.
        td_alltoallv: bool,
        /// Wire codec for the per-level collectives.
        codec: Codec,
        /// Run the 2-D engine on this processor grid (`RxC` must tile the
        /// rank count).
        grid: Option<(usize, usize)>,
        /// Traverse the delta-varint compressed CSR instead of the
        /// uncompressed one.
        compressed: bool,
    },
    /// `trace [--scale N | --graph FILE] [--nodes N] [--opt NAME] [--root V] [--summary-g G] [--codec C] [--json PATH]`
    Trace {
        /// Scale to generate (ignored with `--graph`).
        scale: u32,
        /// Optional edge-list file instead of generation.
        graph: Option<PathBuf>,
        /// Simulated node count.
        nodes: usize,
        /// Optimization level.
        opt: OptLevel,
        /// Root (default: max-degree vertex).
        root: Option<usize>,
        /// Summary-bitmap granularity override (Fig. 16 sweep); default is
        /// the opt rung's own granularity.
        summary_g: Option<usize>,
        /// Wire codec for the per-level collectives.
        codec: Codec,
        /// Trace the 2-D engine on this processor grid.
        grid: Option<(usize, usize)>,
        /// Traverse the delta-varint compressed CSR.
        compressed: bool,
        /// Also export the full `TraceReport` as versioned JSON.
        json: Option<PathBuf>,
    },
    /// `bench [--scale N] [--nodes N] [--opt NAME] [--roots K] [--grid RxC] [--compressed] [--json PATH]`
    Bench {
        /// Scale to generate.
        scale: u32,
        /// Simulated node count.
        nodes: usize,
        /// Optimization level.
        opt: OptLevel,
        /// Number of search keys.
        roots: usize,
        /// Campaign the 2-D engine on this processor grid.
        grid: Option<(usize, usize)>,
        /// Campaign over the delta-varint compressed CSR.
        compressed: bool,
        /// With `--json PATH`: run the wall-clock benchmark snapshot
        /// (reference vs word-level bottom-up kernel) and write the
        /// `BENCH_BFS.json` document there instead of the TEPS campaign.
        json: Option<PathBuf>,
    },
    /// `serve-bench [--scale N] [--queries Q] [--submitters S] [--json PATH]`
    ServeBench {
        /// Scale to generate.
        scale: u32,
        /// Queries in the seeded synthetic stream.
        queries: usize,
        /// Submitter threads of the concurrent latency pass.
        submitters: usize,
        /// Write the machine-readable `multi_query` section here.
        json: Option<PathBuf>,
    },
    /// `tune [--scale N] [--density D]`
    Tune {
        /// Scale of the frontier bitmap.
        scale: u32,
        /// Frontier density in (0, 1).
        density: f64,
    },
    /// `chaos [--scale N] [--nodes N] [--seed S] [--json PATH]`
    Chaos {
        /// Scale to generate.
        scale: u32,
        /// Simulated node count.
        nodes: usize,
        /// Fault-plan seed (same seed ⇒ identical fault matrix).
        seed: u64,
        /// Write the machine-readable cell report here.
        json: Option<PathBuf>,
    },
    /// `--help`
    Help,
}

/// Parses an optimization-level name.
pub fn parse_opt(name: &str) -> Result<OptLevel, String> {
    Ok(match name {
        "ppn1" => OptLevel::OriginalPpn1,
        "ppn8" => OptLevel::OriginalPpn8,
        "share-in-queue" => OptLevel::ShareInQueue,
        "share-all" => OptLevel::ShareAll,
        "par-allgather" => OptLevel::ParAllgather,
        "best" => OptLevel::Granularity(256),
        g if g.starts_with("granularity=") => {
            let v: usize = g["granularity=".len()..]
                .parse()
                .map_err(|e| format!("bad granularity: {e}"))?;
            OptLevel::Granularity(v)
        }
        other => return Err(format!("unknown --opt {other}")),
    })
}

/// Parses a full argument vector (excluding argv\[0\]).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(|| "missing subcommand".to_string())?;
    let rest: Vec<&str> = it.collect();
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|&a| a == name)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let has = |name: &str| rest.contains(&name);
    let num = |name: &str, default: u64| -> Result<u64, String> {
        flag(name)
            .map(|v| v.parse().map_err(|e| format!("bad {name}: {e}")))
            .unwrap_or(Ok(default))
    };
    let summary_g = || -> Result<Option<usize>, String> {
        flag("--summary-g")
            .map(|v| {
                let g: usize = v.parse().map_err(|e| format!("bad --summary-g: {e}"))?;
                if g == 0 || g % 64 != 0 || !g.is_power_of_two() {
                    return Err(format!(
                        "--summary-g must be a power of two and a multiple of 64, got {g}"
                    ));
                }
                Ok(g)
            })
            .transpose()
    };
    let codec = || -> Result<Codec, String> {
        flag("--codec")
            .map(|v| {
                Codec::parse(v).ok_or_else(|| {
                    format!("unknown --codec {v} (raw | delta-varint | word-rle | sieve)")
                })
            })
            .transpose()
            .map(|c| c.unwrap_or(Codec::Raw))
    };
    let grid = || -> Result<Option<(usize, usize)>, String> {
        flag("--grid")
            .map(|v| {
                let (r, c) = v
                    .split_once('x')
                    .ok_or_else(|| format!("bad --grid {v}: expected RxC, e.g. 2x4"))?;
                let rows: usize = r.parse().map_err(|e| format!("bad --grid rows: {e}"))?;
                let cols: usize = c.parse().map_err(|e| format!("bad --grid cols: {e}"))?;
                if rows == 0 || cols == 0 {
                    return Err(format!("bad --grid {v}: rows and cols must be >= 1"));
                }
                Ok((rows, cols))
            })
            .transpose()
    };

    Ok(match sub {
        "generate" => Command::Generate {
            scale: num("--scale", 16)? as u32,
            edge_factor: num("--edge-factor", 16)? as usize,
            seed: num("--seed", 1)?,
            out: PathBuf::from(
                flag("--out").ok_or_else(|| "generate needs --out FILE".to_string())?,
            ),
        },
        "info" => Command::Info {
            path: PathBuf::from(
                rest.first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| "info needs a FILE".to_string())?,
            ),
        },
        "run" => Command::Run {
            scale: num("--scale", 16)? as u32,
            graph: flag("--graph").map(PathBuf::from),
            nodes: num("--nodes", 16)? as usize,
            opt: parse_opt(flag("--opt").unwrap_or("best"))?,
            root: flag("--root")
                .map(|v| v.parse().map_err(|e| format!("bad --root: {e}")))
                .transpose()?,
            summary_g: summary_g()?,
            td_alltoallv: has("--td-alltoallv"),
            codec: codec()?,
            grid: grid()?,
            compressed: has("--compressed"),
        },
        "trace" => Command::Trace {
            scale: num("--scale", 16)? as u32,
            graph: flag("--graph").map(PathBuf::from),
            nodes: num("--nodes", 16)? as usize,
            opt: parse_opt(flag("--opt").unwrap_or("best"))?,
            root: flag("--root")
                .map(|v| v.parse().map_err(|e| format!("bad --root: {e}")))
                .transpose()?,
            summary_g: summary_g()?,
            codec: codec()?,
            grid: grid()?,
            compressed: has("--compressed"),
            json: flag("--json").map(PathBuf::from),
        },
        "bench" => Command::Bench {
            // The snapshot's pinned scenario is scale 19; the TEPS
            // campaign keeps its historical default of 16.
            scale: num("--scale", if flag("--json").is_some() { 19 } else { 16 })? as u32,
            nodes: num("--nodes", 16)? as usize,
            opt: parse_opt(flag("--opt").unwrap_or("best"))?,
            roots: num("--roots", 8)? as usize,
            grid: grid()?,
            compressed: has("--compressed"),
            json: flag("--json").map(PathBuf::from),
        },
        "serve-bench" => Command::ServeBench {
            scale: num("--scale", 16)? as u32,
            queries: (num("--queries", 128)? as usize).max(1),
            submitters: (num("--submitters", 8)? as usize).max(1),
            json: flag("--json").map(PathBuf::from),
        },
        "tune" => Command::Tune {
            scale: num("--scale", 20)? as u32,
            density: flag("--density")
                .map(|v| v.parse().map_err(|e| format!("bad --density: {e}")))
                .unwrap_or(Ok(0.02))?,
        },
        "chaos" => Command::Chaos {
            scale: num("--scale", 12)? as u32,
            nodes: num("--nodes", 4)? as usize,
            seed: num("--seed", 2012)?,
            json: flag("--json").map(PathBuf::from),
        },
        "--help" | "-h" | "help" => Command::Help,
        other => return Err(format!("unknown subcommand {other}")),
    })
}

/// Usage text.
pub fn usage() -> &'static str {
    "nbfs — hybrid BFS on a simulated NUMA cluster (CLUSTER 2012 reproduction)

USAGE:
  nbfs generate --scale N [--edge-factor E] [--seed S] --out FILE
  nbfs info FILE
  nbfs run   [--scale N | --graph FILE] [--nodes N] [--opt OPT] [--root V] [--summary-g G]
             [--td-alltoallv] [--codec CODEC] [--grid RxC] [--compressed]
  nbfs trace [--scale N | --graph FILE] [--nodes N] [--opt OPT] [--root V] [--summary-g G]
             [--codec CODEC] [--grid RxC] [--compressed] [--json PATH]
             (per-level run-event table; --json PATH exports the versioned TraceReport)
  nbfs bench [--scale N] [--nodes N] [--opt OPT] [--roots K] [--grid RxC] [--compressed]
             [--json PATH]
             (--json PATH runs the wall-clock kernel snapshot and writes BENCH_BFS.json there)
  nbfs serve-bench [--scale N] [--queries Q] [--submitters S] [--json PATH]
             (sustained multi-query service benchmark: queries/sec and p50/p99 latency of
              batched 64-lane bit-parallel waves vs a sequential per-root baseline; every
              batched answer must be bit-identical to its baseline run)
  nbfs tune  [--scale N] [--density D]
  nbfs chaos [--scale N] [--nodes N] [--seed S] [--json PATH]
             (seeded fault matrix: every fault kind against every communication target;
              recoverable cells must reproduce the fault-free BFS parents bit for bit)

OPT: ppn1 | ppn8 | share-in-queue | share-all | par-allgather | best | granularity=G
CODEC: raw | delta-varint | word-rle | sieve
--summary-g G overrides the in_queue_summary granularity of any OPT rung
             (Fig. 16 sweep; power of two, multiple of 64; tuned best: 256)
--codec C    compresses the per-level collective payloads on the wire
             (Compression & Sieve; every codec reproduces raw's BFS parents
              bit for bit, only the charged bytes change; default: raw)
--grid RxC   runs the direction-optimizing 2-D engine on an RxC processor
             grid (R*C must equal nodes x ranks-per-node; parents are bit
             for bit those of the 1-D engine)
--compressed traverses the delta-varint compressed CSR in place of the
             uncompressed one (identical results, ~half the graph memory)"
}

/// Executes a parsed command, writing human output to `out`.
pub fn execute(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), String> {
    let err = |e: std::io::Error| e.to_string();
    match cmd {
        Command::Help => writeln!(out, "{}", usage()).map_err(err)?,
        Command::Generate {
            scale,
            edge_factor,
            seed,
            out: path,
        } => {
            let el = GraphBuilder::rmat(scale, edge_factor)
                .seed(seed)
                .build_edge_list();
            io::save(&path, &el).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} raw edges over {} vertices to {}",
                el.len(),
                el.num_vertices,
                path.display()
            )
            .map_err(err)?;
        }
        Command::Info { path } => {
            let el = io::load(&path).map_err(|e| e.to_string())?;
            let g = Csr::from_edge_list(&el);
            let s = DegreeStats::compute(&g);
            writeln!(
                out,
                "{}",
                serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?
            )
            .map_err(err)?;
        }
        Command::Run {
            scale,
            graph,
            nodes,
            opt,
            root,
            summary_g,
            td_alltoallv,
            codec,
            grid,
            compressed,
        } => {
            if grid.is_some() && td_alltoallv {
                return Err(
                    "--td-alltoallv selects a 1-D top-down strategy; it cannot combine with --grid"
                        .into(),
                );
            }
            let g = match graph {
                Some(path) => Csr::from_edge_list(&io::load(&path).map_err(|e| e.to_string())?),
                None => GraphBuilder::rmat(scale, 16).seed(1).build(),
            };
            let actual_scale = (g.num_vertices() as f64).log2().ceil() as u32;
            let machine = presets::xeon_x7550_cluster(nodes).scaled_to_graph(actual_scale, 28);
            let mut builder = Scenario::builder(machine, opt).codec(codec);
            if td_alltoallv {
                builder = builder.td_strategy(TdStrategy::Alltoallv);
            }
            if let Some(g) = summary_g {
                builder = builder.summary_granularity(g);
            }
            let scenario = builder.build().map_err(|e| e.to_string())?;
            let root = root.unwrap_or_else(|| {
                (0..g.num_vertices())
                    .max_by_key(|&v| g.degree(v))
                    .expect("non-empty")
            });
            if let Some(shape) = grid {
                check_grid(&scenario, shape)?;
            }
            let (visited, profile) = match (grid, compressed) {
                (Some((r, c)), true) => {
                    let packed = CompressedCsr::from_csr(&g);
                    writeln!(out, "{}", storage_line(&g, &packed)).map_err(err)?;
                    let run = TwoDimBfs::with_grid(&packed, &scenario, r, c).run(root);
                    (run.visited, run.profile)
                }
                (Some((r, c)), false) => {
                    let run = TwoDimBfs::with_grid(&g, &scenario, r, c).run(root);
                    (run.visited, run.profile)
                }
                (None, true) => {
                    let packed = CompressedCsr::from_csr(&g);
                    writeln!(out, "{}", storage_line(&g, &packed)).map_err(err)?;
                    let run = DistributedBfs::new(&packed, &scenario).run(root);
                    (run.visited, run.profile)
                }
                (None, false) => {
                    let run = DistributedBfs::new(&g, &scenario).run(root);
                    (run.visited, run.profile)
                }
            };
            let engine_label = match grid {
                Some((r, c)) => format!("2-D {r}x{c}"),
                None => "1-D".to_string(),
            };
            writeln!(
                out,
                "{} ({engine_label}) on {nodes} nodes, root {root}: visited {visited} of {} vertices",
                opt.label(),
                g.num_vertices()
            )
            .map_err(err)?;
            for phase in Phase::ALL {
                let t = profile.phase(phase);
                writeln!(
                    out,
                    "  {:<16} {:>12}  {:>5.1}%",
                    phase.label(),
                    format!("{t}"),
                    100.0 * (t / profile.total())
                )
                .map_err(err)?;
            }
            let teps = g.component_edges(root) as f64 / profile.total().as_secs();
            writeln!(out, "  total {} -> {}", profile.total(), format_teps(teps)).map_err(err)?;
        }
        Command::Trace {
            scale,
            graph,
            nodes,
            opt,
            root,
            summary_g,
            codec,
            grid,
            compressed,
            json,
        } => {
            let g = match graph {
                Some(path) => Csr::from_edge_list(&io::load(&path).map_err(|e| e.to_string())?),
                None => GraphBuilder::rmat(scale, 16).seed(1).build(),
            };
            let actual_scale = (g.num_vertices() as f64).log2().ceil() as u32;
            let machine = presets::xeon_x7550_cluster(nodes).scaled_to_graph(actual_scale, 28);
            let mut builder = Scenario::builder(machine, opt)
                .trace(TraceConfig::Standard)
                .codec(codec);
            if let Some(g) = summary_g {
                builder = builder.summary_granularity(g);
            }
            let scenario = builder.build().map_err(|e| e.to_string())?;
            let root = root.unwrap_or_else(|| {
                (0..g.num_vertices())
                    .max_by_key(|&v| g.degree(v))
                    .expect("non-empty")
            });
            if let Some(shape) = grid {
                check_grid(&scenario, shape)?;
            }
            let (visited, engine_profile, report) = match (grid, compressed) {
                (Some((r, c)), true) => {
                    let packed = CompressedCsr::from_csr(&g);
                    let (run, report) =
                        TwoDimBfs::with_grid(&packed, &scenario, r, c).run_traced(root);
                    (run.visited, run.profile, report)
                }
                (Some((r, c)), false) => {
                    let (run, report) = TwoDimBfs::with_grid(&g, &scenario, r, c).run_traced(root);
                    (run.visited, run.profile, report)
                }
                (None, true) => {
                    let packed = CompressedCsr::from_csr(&g);
                    let (run, report) = DistributedBfs::new(&packed, &scenario).run_traced(root);
                    (run.visited, run.profile, report)
                }
                (None, false) => {
                    let (run, report) = DistributedBfs::new(&g, &scenario).run_traced(root);
                    (run.visited, run.profile, report)
                }
            };
            let engine_label = match grid {
                Some((r, c)) => format!("2-D {r}x{c}"),
                None => "1-D".to_string(),
            };
            writeln!(
                out,
                "{} ({engine_label}) on {nodes} nodes, root {root}: visited {visited} of {} vertices",
                opt.label(),
                g.num_vertices()
            )
            .map_err(err)?;

            writeln!(out, "\nper-level spans (simulated time):").map_err(err)?;
            writeln!(
                out,
                "{:>5}  {:<10} {:>10} {:>11} {:>11} {:>11} {:>11} {:>11}",
                "level", "direction", "discovered", "comp", "comm", "stall", "switch", "total"
            )
            .map_err(err)?;
            for lv in &report.levels {
                writeln!(
                    out,
                    "{:>5}  {:<10} {:>10} {:>11} {:>11} {:>11} {:>11} {:>11}",
                    lv.level,
                    lv.direction.label(),
                    lv.discovered,
                    format!("{}", lv.comp),
                    format!("{}", lv.comm),
                    format!("{}", lv.stall),
                    format!("{}", lv.switch),
                    format!("{}", lv.total())
                )
                .map_err(err)?;
            }

            let flips: Vec<_> = report
                .decisions
                .iter()
                .filter(|d| d.prev != d.chosen)
                .collect();
            if !flips.is_empty() {
                writeln!(out, "\ndirection switches:").map_err(err)?;
                for d in flips {
                    writeln!(
                        out,
                        "  level {:>2}: {} -> {}  (m_f={}, m_u={}, n_f={}, n={})",
                        d.level,
                        d.prev.label(),
                        d.chosen.label(),
                        d.m_f,
                        d.m_u,
                        d.n_f,
                        d.n
                    )
                    .map_err(err)?;
                }
            }

            // Aggregate every collective sample (per-level plus the terminal
            // allreduce) into one volume ledger, keyed by kind in order of
            // first appearance.
            let mut ledger: Vec<(CollectiveKind, u64, CollectiveStats, SimTime)> = Vec::new();
            let samples = report
                .levels
                .iter()
                .flat_map(|l| l.collectives.iter())
                .chain(report.post_collectives.iter());
            for rec in samples {
                match ledger.iter_mut().find(|(k, ..)| *k == rec.kind) {
                    Some(entry) => {
                        entry.1 += 1;
                        entry.2.merge(rec.stats);
                        entry.3 += rec.cost.total();
                    }
                    None => ledger.push((rec.kind, 1, rec.stats, rec.cost.total())),
                }
            }
            writeln!(
                out,
                "\ncollective volume ledger (codec: {}):",
                codec.label()
            )
            .map_err(err)?;
            writeln!(
                out,
                "{:<18} {:>6} {:>7} {:>7} {:>11} {:>11} {:>11} {:>7} {:>11}",
                "collective", "calls", "rounds", "flows", "raw", "wire", "shm", "ratio", "sim time"
            )
            .map_err(err)?;
            for (kind, calls, stats, cost) in &ledger {
                let ratio = if stats.wire_bytes > 0 {
                    format!("{:.2}x", stats.raw_bytes as f64 / stats.wire_bytes as f64)
                } else {
                    "-".to_string()
                };
                writeln!(
                    out,
                    "{:<18} {:>6} {:>7} {:>7} {:>11} {:>11} {:>11} {:>7} {:>11}",
                    kind.label(),
                    calls,
                    stats.rounds,
                    stats.flows,
                    format_bytes(stats.raw_bytes as usize),
                    format_bytes(stats.wire_bytes as usize),
                    format_bytes(stats.shm_bytes as usize),
                    ratio,
                    format!("{cost}")
                )
                .map_err(err)?;
            }
            let (raw_total, wire_total) = ledger.iter().fold((0u64, 0u64), |(r, w), e| {
                (r + e.2.raw_bytes, w + e.2.wire_bytes)
            });
            if wire_total > 0 {
                writeln!(
                    out,
                    "{:<18} {:>22} {:>11} {:>11} {:>11} {:>7}",
                    "total",
                    "",
                    format_bytes(raw_total as usize),
                    format_bytes(wire_total as usize),
                    "",
                    format!("{:.2}x", raw_total as f64 / wire_total as f64)
                )
                .map_err(err)?;
            }

            let projected = report.run_profile();
            writeln!(out, "\nFig. 11 phase totals (projected from the trace):").map_err(err)?;
            for phase in Phase::ALL {
                let t = projected.phase(phase);
                writeln!(
                    out,
                    "  {:<16} {:>12}  {:>5.1}%",
                    phase.label(),
                    format!("{t}"),
                    100.0 * (t / projected.total())
                )
                .map_err(err)?;
            }
            let exact = Phase::ALL
                .iter()
                .all(|&p| projected.phase(p) == engine_profile.phase(p));
            writeln!(
                out,
                "  total {} (projection == engine profile: {exact})",
                projected.total()
            )
            .map_err(err)?;
            if report.dropped_events > 0 {
                writeln!(
                    out,
                    "warning: {} event(s) dropped; rerun with a larger ring",
                    report.dropped_events
                )
                .map_err(err)?;
            }
            if let Some(path) = json {
                std::fs::write(&path, report.to_json().map_err(|e| e.to_string())?).map_err(err)?;
                writeln!(out, "wrote {}", path.display()).map_err(err)?;
            }
        }
        Command::Bench {
            scale,
            nodes,
            opt,
            roots,
            grid,
            compressed,
            json,
        } => {
            if let Some(path) = json {
                if grid.is_some() || compressed {
                    return Err(
                        "the --json snapshot runs a pinned scenario matrix (including the \
                         2-D and compressed sections); --grid/--compressed apply to the \
                         TEPS campaign only"
                            .into(),
                    );
                }
                let cfg = nbfs_bench::wallclock::SnapshotConfig {
                    scale,
                    ..Default::default()
                };
                let snap = nbfs_bench::wallclock::run_snapshot(&cfg);
                nbfs_bench::wallclock::write_snapshot(&path, &snap).map_err(err)?;
                writeln!(out, "{}", nbfs_bench::wallclock::summary(&snap)).map_err(err)?;
                writeln!(
                    out,
                    "multi-query: {}",
                    nbfs_bench::wallclock::multi_query_summary(&snap.multi_query)
                )
                .map_err(err)?;
                writeln!(
                    out,
                    "2-D: {}",
                    nbfs_bench::wallclock::two_dim_summary(&snap.two_dim)
                )
                .map_err(err)?;
                writeln!(out, "wrote {}", path.display()).map_err(err)?;
                return Ok(());
            }
            let g = GraphBuilder::rmat(scale, 16).seed(1).build();
            let machine = presets::xeon_x7550_cluster(nodes).scaled_to_graph(scale, 28);
            let scenario = Scenario::builder(machine, opt)
                .build()
                .map_err(|e| e.to_string())?;
            if let Some(shape) = grid {
                check_grid(&scenario, shape)?;
            }
            let harness = Graph500Harness::new(&g, &scenario);
            let (harmonic_teps, bu_share) = if grid.is_some() || compressed {
                // The 2-D and compressed-storage campaigns run outside the
                // 1-D harness: same sampled search keys, every tree
                // validated against the uncompressed graph.
                let keys = harness.sample_roots(roots, 2012);
                let packed = compressed.then(|| CompressedCsr::from_csr(&g));
                let profiles: Vec<_> = keys
                    .iter()
                    .map(|&root| {
                        let (parent, visited, profile) = match (grid, &packed) {
                            (Some((r, c)), Some(p)) => {
                                let run = TwoDimBfs::with_grid(p, &scenario, r, c).run(root);
                                (run.parent, run.visited, run.profile)
                            }
                            (Some((r, c)), None) => {
                                let run = TwoDimBfs::with_grid(&g, &scenario, r, c).run(root);
                                (run.parent, run.visited, run.profile)
                            }
                            (None, Some(p)) => {
                                let run = DistributedBfs::new(p, &scenario).run(root);
                                (run.parent, run.visited, run.profile)
                            }
                            (None, None) => unreachable!("campaign variant requires a flag"),
                        };
                        let checked = validate_bfs_tree(&g, root, &parent)
                            .map_err(|e| format!("validation failed at root {root}: {e}"))?;
                        if checked != visited {
                            return Err(format!("root {root}: visited count mismatch"));
                        }
                        Ok(profile)
                    })
                    .collect::<Result<_, String>>()?;
                let inv_sum: f64 = keys
                    .iter()
                    .zip(&profiles)
                    .map(|(&root, p)| p.total().as_secs() / g.component_edges(root) as f64)
                    .sum();
                let mut mean = nbfs_core::profile::RunProfile::default();
                for p in &profiles {
                    mean.accumulate(p);
                }
                let mean = mean.scaled(profiles.len() as f64);
                (keys.len() as f64 / inv_sum, mean.bu_comm_fraction())
            } else {
                let config = HarnessConfig::builder()
                    .roots(roots)
                    .seed(2012)
                    .validate(true)
                    .build();
                let result = harness.run(&config);
                (
                    result.harmonic_teps(),
                    result.mean_profile.bu_comm_fraction(),
                )
            };
            let engine_label = match grid {
                Some((r, c)) => format!(" | 2-D {r}x{c}"),
                None => String::new(),
            };
            let storage_label = if compressed { " | compressed CSR" } else { "" };
            writeln!(
                out,
                "{} | scale {scale} | {nodes} nodes | {roots} roots (all validated){engine_label}{storage_label}",
                opt.label()
            )
            .map_err(err)?;
            writeln!(out, "harmonic-mean TEPS: {}", format_teps(harmonic_teps)).map_err(err)?;
            writeln!(out, "bottom-up comm share: {:.1}%", 100.0 * bu_share).map_err(err)?;
        }
        Command::ServeBench {
            scale,
            queries,
            submitters,
            json,
        } => {
            let cfg = nbfs_bench::wallclock::SnapshotConfig {
                scale,
                queries,
                submitters,
                ..Default::default()
            };
            let mq = nbfs_bench::wallclock::run_multi_query_bench(&cfg);
            writeln!(
                out,
                "serve-bench: scale {scale} | {}",
                nbfs_bench::wallclock::multi_query_summary(&mq)
            )
            .map_err(err)?;
            if let Some(path) = json {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&mq).map_err(|e| e.to_string())? + "\n",
                )
                .map_err(err)?;
                writeln!(out, "wrote {}", path.display()).map_err(err)?;
            }
            if !mq.identical_results {
                return Err("serve-bench: batched answers diverged from the baseline".into());
            }
        }
        Command::Tune { scale, density } => {
            if !(0.0..1.0).contains(&density) || density <= 0.0 {
                return Err("--density must be in (0, 1)".into());
            }
            let n = 1usize << scale.min(24);
            let mut frontier = Bitmap::new(n);
            let mut rng = nbfs_util::rng::Xoroshiro128::new(7);
            let target = ((n as f64) * density) as usize;
            let mut ones = 0;
            while ones < target {
                if frontier.set_returning_fresh(rng.next_below(n as u64) as usize) {
                    ones += 1;
                }
            }
            let machine = presets::cluster2012().scaled_to_graph(scale.min(24), 32);
            let g = nbfs_core::tuning::auto_granularity(
                &machine,
                &frontier,
                Residence::NodeShared,
                Residence::NodeShared,
            );
            writeln!(
                out,
                "frontier density {density}: recommended in_queue_summary granularity = {g}"
            )
            .map_err(err)?;
            for cand in [64usize, 128, 256, 512, 1024, 2048, 4096] {
                let c = nbfs_core::tuning::expected_check_ns(
                    &machine,
                    &frontier,
                    cand,
                    Residence::NodeShared,
                    Residence::NodeShared,
                );
                writeln!(out, "  g={cand:<5} expected check cost {c:.1} ns").map_err(err)?;
            }
        }
        Command::Chaos {
            scale,
            nodes,
            seed,
            json,
        } => {
            let report = run_chaos(scale, nodes, seed)?;
            writeln!(
                out,
                "chaos matrix: seed {seed}, scale {scale}, {nodes} nodes"
            )
            .map_err(err)?;
            writeln!(
                out,
                "{:<18} {:<10} {:<8} {:>7} {:>10} {:>14}  outcome",
                "target", "kind", "expect", "faults", "identical", "deterministic"
            )
            .map_err(err)?;
            for c in &report.cells {
                writeln!(
                    out,
                    "{:<18} {:<10} {:<8} {:>7} {:>10} {:>14}  {}",
                    c.target,
                    c.kind,
                    c.expectation,
                    c.faults,
                    if c.identical { "yes" } else { "NO" },
                    if c.deterministic { "yes" } else { "NO" },
                    c.outcome
                )
                .map_err(err)?;
            }
            let passed = report.cells.iter().filter(|c| c.passed).count();
            writeln!(out, "chaos: {passed}/{} cells passed", report.cells.len()).map_err(err)?;
            if let Some(path) = json {
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?,
                )
                .map_err(err)?;
                writeln!(out, "wrote {}", path.display()).map_err(err)?;
            }
            if !report.passed {
                return Err(format!(
                    "chaos: {} cell(s) failed",
                    report.cells.len() - passed
                ));
            }
        }
    }
    Ok(())
}

/// Checks that a `--grid RxC` shape tiles the scenario's rank count,
/// turning the engine's panic into a CLI-friendly error.
fn check_grid(scenario: &Scenario, (rows, cols): (usize, usize)) -> Result<(), String> {
    let pm = scenario.process_map();
    if rows * cols != pm.world_size() {
        return Err(format!(
            "--grid {rows}x{cols} does not tile the {} ranks ({} nodes x {} ranks per node)",
            pm.world_size(),
            pm.nodes(),
            pm.ppn()
        ));
    }
    Ok(())
}

/// The `--compressed` storage summary line.
fn storage_line(dense: &Csr, packed: &CompressedCsr) -> String {
    format!(
        "compressed CSR: {} vs {} uncompressed ({:.2}x)",
        format_bytes(packed.size_bytes()),
        format_bytes(dense.size_bytes()),
        dense.size_bytes() as f64 / packed.size_bytes() as f64
    )
}

/// One cell of the chaos matrix: a fault kind injected into one
/// communication target.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosCell {
    /// Communication target (`p2p`, `ring-allgather`, `leader-allgather`,
    /// `par-allgather`, `alltoallv`).
    pub target: String,
    /// Fault kind injected (`drop`, `delay`, …).
    pub kind: String,
    /// What the cell must do: `recover` or `error`.
    pub expectation: String,
    /// What actually happened (`recovered`, `structured-error`, or a
    /// failure description).
    pub outcome: String,
    /// Fault records logged by the run.
    pub faults: u64,
    /// Recovered results bit-identical to the fault-free run (always true
    /// for a passing `recover` cell; vacuously true for `error` cells).
    pub identical: bool,
    /// Re-running with the same seed reproduced the identical fault log /
    /// trace report.
    pub deterministic: bool,
    /// The cell met its expectation.
    pub passed: bool,
}

/// The machine-readable result of `nbfs chaos`.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosReport {
    /// Fault-plan seed.
    pub seed: u64,
    /// Graph scale.
    pub scale: u32,
    /// Simulated node count.
    pub nodes: usize,
    /// Every cell passed.
    pub passed: bool,
    /// The matrix, row-major (target × kind).
    pub cells: Vec<ChaosCell>,
}

/// A single-spec plan: `kind` on every matching site, rate 1.0. First
/// attempts only, so drops deterministically recover on retry; crashes are
/// always fatal.
fn chaos_plan(seed: u64, kind: FaultKind) -> FaultPlan {
    FaultPlan::new(seed).spec(FaultSpec::new(kind, FaultScope::any()))
}

/// Runs the seeded fault matrix: every [`FaultKind`] against the
/// point-to-point runtime and each engine in the collective ladder
/// (ring, leader-based, parallelized allgather, alltoallv top-down).
///
/// Recoverable cells must reproduce the fault-free results bit for bit and
/// the same seed must reproduce the identical fault log; crash cells must
/// fail with a structured error — completion of the matrix at all is the
/// no-hang check.
pub fn run_chaos(scale: u32, nodes: usize, seed: u64) -> Result<ChaosReport, String> {
    let mut cells = Vec::new();

    // --- point-to-point: the threaded SPMD runtime -----------------------
    let world = 8usize;
    let expect: Vec<Vec<u8>> = (0..world).map(|r| vec![r as u8; 4]).collect();
    let ring = |ctx: &mut nbfs_comm::runtime::RankCtx| {
        ctx.allgather_bytes(vec![ctx.rank() as u8; 4], nbfs_comm::tags::CHAOS_RING)
    };
    for kind in FaultKind::ALL {
        let plan = chaos_plan(seed, kind);
        let out = run_spmd_faulted(world, &plan, ring);
        let cell = if kind == FaultKind::Crash {
            let all_structured = out
                .results
                .iter()
                .all(|r| matches!(r, Err(NbfsError::RankFailed { .. })));
            ChaosCell {
                target: "p2p".into(),
                kind: kind.label().into(),
                expectation: "error".into(),
                outcome: if all_structured {
                    "structured-error".into()
                } else {
                    "FAIL: expected RankFailed on every rank".into()
                },
                faults: out.faults.len() as u64,
                identical: true,
                deterministic: true,
                passed: all_structured,
            }
        } else {
            let identical = out
                .results
                .iter()
                .all(|r| r.as_ref().map(|v| v == &expect).unwrap_or(false));
            let rerun = run_spmd_faulted(world, &plan, ring);
            let deterministic = out.faults == rerun.faults;
            let fired = !out.faults.is_empty();
            ChaosCell {
                target: "p2p".into(),
                kind: kind.label().into(),
                expectation: "recover".into(),
                outcome: if identical && fired {
                    "recovered".into()
                } else if !fired {
                    "FAIL: plan never fired".into()
                } else {
                    "FAIL: recovered results differ from fault-free".into()
                },
                faults: out.faults.len() as u64,
                identical,
                deterministic,
                passed: identical && deterministic && fired,
            }
        };
        cells.push(cell);
    }

    // --- engine collectives: one target per allgather family -------------
    let g = GraphBuilder::rmat(scale, 16).seed(1).build();
    let machine = presets::xeon_x7550_cluster(nodes).scaled_to_graph(scale, 28);
    let root = (0..g.num_vertices())
        .max_by_key(|&v| g.degree(v))
        .ok_or("empty graph")?;
    let targets: [(&str, OptLevel, TdStrategy); 4] = [
        (
            "ring-allgather",
            OptLevel::OriginalPpn8,
            TdStrategy::SparseAllgather,
        ),
        (
            "leader-allgather",
            OptLevel::ShareInQueue,
            TdStrategy::SparseAllgather,
        ),
        (
            "par-allgather",
            OptLevel::ParAllgather,
            TdStrategy::SparseAllgather,
        ),
        ("alltoallv", OptLevel::ShareAll, TdStrategy::Alltoallv),
    ];

    for (label, opt, td) in targets {
        let scenario = |faults: Option<FaultPlan>| -> Result<Scenario, String> {
            let mut b = Scenario::builder(machine.clone(), opt)
                .td_strategy(td)
                .trace(TraceConfig::Standard);
            if let Some(plan) = faults {
                b = b.faults(plan);
            }
            b.build().map_err(|e| e.to_string())
        };
        let baseline = DistributedBfs::new(&g, &scenario(None)?).run(root);
        for kind in FaultKind::ALL {
            let plan = chaos_plan(seed, kind);
            let faulted = DistributedBfs::new(&g, &scenario(Some(plan.clone()))?);
            let cell = if kind == FaultKind::Crash {
                match faulted.try_run_traced(root) {
                    Err(e) => ChaosCell {
                        target: label.into(),
                        kind: kind.label().into(),
                        expectation: "error".into(),
                        outcome: format!("structured-error: {e}"),
                        faults: 0,
                        identical: true,
                        deterministic: true,
                        passed: true,
                    },
                    Ok(_) => ChaosCell {
                        target: label.into(),
                        kind: kind.label().into(),
                        expectation: "error".into(),
                        outcome: "FAIL: crash plan completed".into(),
                        faults: 0,
                        identical: true,
                        deterministic: true,
                        passed: false,
                    },
                }
            } else {
                match faulted.try_run_traced(root) {
                    Ok((run, report)) => {
                        let identical = run.parent == baseline.parent;
                        let json = report.to_json().map_err(|e| e.to_string())?;
                        let rerun = faulted.try_run_traced(root);
                        let deterministic = match rerun {
                            Ok((_, second)) => second.to_json().map_err(|e| e.to_string())? == json,
                            Err(_) => false,
                        };
                        let fired = !report.faults.is_empty();
                        ChaosCell {
                            target: label.into(),
                            kind: kind.label().into(),
                            expectation: "recover".into(),
                            outcome: if identical && fired {
                                "recovered".into()
                            } else if !fired {
                                "FAIL: plan never fired".into()
                            } else {
                                "FAIL: recovered parents differ from fault-free".into()
                            },
                            faults: report.faults.len() as u64,
                            identical,
                            deterministic,
                            passed: identical && deterministic && fired,
                        }
                    }
                    Err(e) => ChaosCell {
                        target: label.into(),
                        kind: kind.label().into(),
                        expectation: "recover".into(),
                        outcome: format!("FAIL: unexpected error: {e}"),
                        faults: 0,
                        identical: false,
                        deterministic: false,
                        passed: false,
                    },
                }
            };
            cells.push(cell);
        }
    }

    // --- codec cells: retry and compression must compose -----------------
    // Faulted collectives re-send *encoded* payloads, so a drop or a
    // duplicate under DeltaVarint exercises the retry path through the
    // decoder. Recoverable cells must match the fault-free run of the
    // same codec — which the equivalence suite separately pins to raw.
    let codec_targets: [(&str, OptLevel, TdStrategy); 2] = [
        (
            "ring-allgather+dv",
            OptLevel::OriginalPpn8,
            TdStrategy::SparseAllgather,
        ),
        ("alltoallv+dv", OptLevel::ShareAll, TdStrategy::Alltoallv),
    ];
    for (label, opt, td) in codec_targets {
        let scenario = |faults: Option<FaultPlan>| -> Result<Scenario, String> {
            let mut b = Scenario::builder(machine.clone(), opt)
                .td_strategy(td)
                .codec(Codec::DeltaVarint)
                .trace(TraceConfig::Standard);
            if let Some(plan) = faults {
                b = b.faults(plan);
            }
            b.build().map_err(|e| e.to_string())
        };
        let baseline = DistributedBfs::new(&g, &scenario(None)?).run(root);
        for kind in [FaultKind::Drop, FaultKind::Duplicate] {
            let plan = chaos_plan(seed, kind);
            let faulted = DistributedBfs::new(&g, &scenario(Some(plan.clone()))?);
            let cell = match faulted.try_run_traced(root) {
                Ok((run, report)) => {
                    let identical = run.parent == baseline.parent;
                    let json = report.to_json().map_err(|e| e.to_string())?;
                    let rerun = faulted.try_run_traced(root);
                    let deterministic = match rerun {
                        Ok((_, second)) => second.to_json().map_err(|e| e.to_string())? == json,
                        Err(_) => false,
                    };
                    let fired = !report.faults.is_empty();
                    ChaosCell {
                        target: label.into(),
                        kind: kind.label().into(),
                        expectation: "recover".into(),
                        outcome: if identical && fired {
                            "recovered".into()
                        } else if !fired {
                            "FAIL: plan never fired".into()
                        } else {
                            "FAIL: recovered parents differ from fault-free".into()
                        },
                        faults: report.faults.len() as u64,
                        identical,
                        deterministic,
                        passed: identical && deterministic && fired,
                    }
                }
                Err(e) => ChaosCell {
                    target: label.into(),
                    kind: kind.label().into(),
                    expectation: "recover".into(),
                    outcome: format!("FAIL: unexpected error: {e}"),
                    faults: 0,
                    identical: false,
                    deterministic: false,
                    passed: false,
                },
            };
            cells.push(cell);
        }
    }

    // --- batched query waves: faults during a multi-query batch ----------
    // The query engine's distributed backends batch several roots into one
    // wave; a fault plan must neither hang the wave nor perturb any
    // answer. Recoverable cells must match the fault-free batch bit for
    // bit, query by query.
    let wave_roots: Vec<usize> = {
        let mut by_degree: Vec<usize> =
            (0..g.num_vertices()).filter(|&v| g.degree(v) > 0).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        by_degree.truncate(6);
        by_degree
    };
    let wave_targets: [(&str, OptLevel, TdStrategy); 2] = [
        (
            "query-wave-ring",
            OptLevel::OriginalPpn8,
            TdStrategy::SparseAllgather,
        ),
        ("query-wave-a2av", OptLevel::ShareAll, TdStrategy::Alltoallv),
    ];
    for (label, opt, td) in wave_targets {
        let scenario = |faults: Option<FaultPlan>| -> Result<Scenario, String> {
            let mut b = Scenario::builder(machine.clone(), opt)
                .td_strategy(td)
                .trace(TraceConfig::Standard);
            if let Some(plan) = faults {
                b = b.faults(plan);
            }
            b.build().map_err(|e| e.to_string())
        };
        let fault_free = DistributedBfs::new(&g, &scenario(None)?);
        let baseline =
            QueryEngine::new(DistributedRunBackend::new(&fault_free)).run_batch(&wave_roots);
        for kind in [FaultKind::Drop, FaultKind::Stall] {
            let plan = chaos_plan(seed, kind);
            let faulted = DistributedBfs::new(&g, &scenario(Some(plan.clone()))?);
            let service = QueryEngine::new(DistributedTryTracedBackend::new(&faulted));
            let wave = service.run_batch(&wave_roots);
            let mut identical = wave.len() == baseline.len();
            let mut faults = 0u64;
            let mut logs: Vec<String> = Vec::with_capacity(wave.len());
            for (result, expected) in wave.iter().zip(&baseline) {
                match result {
                    Ok((run, report)) => {
                        identical &= run.parent == expected.parent;
                        faults += report.faults.len() as u64;
                        logs.push(report.to_json().map_err(|e| e.to_string())?);
                    }
                    Err(_) => identical = false,
                }
            }
            let rerun = service.run_batch(&wave_roots);
            let deterministic = rerun.len() == wave.len()
                && rerun.iter().zip(&logs).all(|(result, log)| match result {
                    Ok((_, report)) => report.to_json().map(|j| &j == log).unwrap_or(false),
                    Err(_) => false,
                });
            let fired = faults > 0;
            cells.push(ChaosCell {
                target: label.into(),
                kind: kind.label().into(),
                expectation: "recover".into(),
                outcome: if identical && fired {
                    "recovered".into()
                } else if !fired {
                    "FAIL: plan never fired".into()
                } else {
                    "FAIL: batched answers differ from the fault-free wave".into()
                },
                faults,
                identical,
                deterministic,
                passed: identical && deterministic && fired,
            });
        }
    }

    let passed = cells.iter().all(|c| c.passed);
    Ok(ChaosReport {
        seed,
        scale,
        nodes,
        passed,
        cells,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = parse(&argv("generate --scale 12 --seed 9 --out /tmp/x.bin")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                scale: 12,
                edge_factor: 16,
                seed: 9,
                out: PathBuf::from("/tmp/x.bin"),
            }
        );
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse(&argv(
            "run --scale 14 --nodes 4 --opt share-all --td-alltoallv",
        ))
        .unwrap();
        match cmd {
            Command::Run {
                scale,
                nodes,
                opt,
                td_alltoallv,
                ..
            } => {
                assert_eq!(scale, 14);
                assert_eq!(nodes, 4);
                assert_eq!(opt, OptLevel::ShareAll);
                assert!(td_alltoallv);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_opt_names() {
        assert_eq!(parse_opt("best").unwrap(), OptLevel::Granularity(256));
        assert_eq!(
            parse_opt("granularity=512").unwrap(),
            OptLevel::Granularity(512)
        );
        assert!(parse_opt("nope").is_err());
        assert!(parse_opt("granularity=x").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&[]).is_err());
        assert!(
            parse(&argv("generate --scale 12")).is_err(),
            "--out required"
        );
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("info")).is_err());
    }

    #[test]
    fn run_command_end_to_end() {
        let cmd = parse(&argv("run --scale 10 --nodes 2 --opt ppn8")).unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("visited"), "{text}");
        assert!(text.contains("TEPS"), "{text}");
    }

    #[test]
    fn parse_trace_flags() {
        let cmd = parse(&argv(
            "trace --scale 12 --nodes 4 --opt ppn8 --json /tmp/t.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                scale: 12,
                graph: None,
                nodes: 4,
                opt: OptLevel::OriginalPpn8,
                root: None,
                summary_g: None,
                codec: Codec::Raw,
                grid: None,
                compressed: false,
                json: Some(PathBuf::from("/tmp/t.json")),
            }
        );
    }

    #[test]
    fn parse_codec() {
        match parse(&argv("run --scale 14 --codec delta-varint")).unwrap() {
            Command::Run { codec, .. } => assert_eq!(codec, Codec::DeltaVarint),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("trace --scale 14 --codec sieve")).unwrap() {
            Command::Trace { codec, .. } => assert_eq!(codec, Codec::Sieve),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("run --scale 14 --codec word-rle")).unwrap() {
            Command::Run { codec, .. } => assert_eq!(codec, Codec::WordRle),
            other => panic!("wrong parse: {other:?}"),
        }
        // Default is raw; unknown names are rejected with the option list.
        match parse(&argv("run --scale 14")).unwrap() {
            Command::Run { codec, .. } => assert_eq!(codec, Codec::Raw),
            other => panic!("wrong parse: {other:?}"),
        }
        let e = parse(&argv("run --codec zstd")).unwrap_err();
        assert!(e.contains("delta-varint"), "{e}");
    }

    #[test]
    fn parse_summary_g() {
        match parse(&argv("run --scale 14 --summary-g 256")).unwrap() {
            Command::Run { summary_g, .. } => assert_eq!(summary_g, Some(256)),
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("trace --scale 14 --summary-g 1024")).unwrap() {
            Command::Trace { summary_g, .. } => assert_eq!(summary_g, Some(1024)),
            other => panic!("wrong parse: {other:?}"),
        }
        // Validation mirrors SummaryBitmap::new's contract.
        assert!(parse(&argv("run --summary-g 0")).is_err());
        assert!(parse(&argv("run --summary-g 32")).is_err(), "sub-word");
        assert!(parse(&argv("run --summary-g 192")).is_err(), "non-pow2");
        assert!(parse(&argv("trace --summary-g x")).is_err());
    }

    #[test]
    fn parse_grid_and_compressed() {
        match parse(&argv("run --scale 12 --grid 2x4 --compressed")).unwrap() {
            Command::Run {
                grid, compressed, ..
            } => {
                assert_eq!(grid, Some((2, 4)));
                assert!(compressed);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("trace --scale 12 --grid 8x1")).unwrap() {
            Command::Trace {
                grid, compressed, ..
            } => {
                assert_eq!(grid, Some((8, 1)));
                assert!(!compressed);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("bench --scale 12 --compressed")).unwrap() {
            Command::Bench {
                grid, compressed, ..
            } => {
                assert_eq!(grid, None);
                assert!(compressed);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_grid_rejects_malformed_shapes() {
        assert!(parse(&argv("run --grid 2")).unwrap_err().contains("RxC"));
        assert!(parse(&argv("run --grid 2x")).is_err());
        assert!(parse(&argv("run --grid x4")).is_err());
        assert!(parse(&argv("run --grid axb")).is_err());
        assert!(
            parse(&argv("trace --grid 0x4"))
                .unwrap_err()
                .contains(">= 1"),
            "zero extent"
        );
    }

    #[test]
    fn grid_must_tile_the_rank_count() {
        // 2 nodes x 8 ranks per node = 16 ranks; 3x3 does not tile them.
        let cmd = parse(&argv("run --scale 10 --nodes 2 --opt share-all --grid 3x3")).unwrap();
        let e = execute(cmd, &mut Vec::new()).unwrap_err();
        assert!(e.contains("does not tile the 16 ranks"), "{e}");
        let cmd = parse(&argv("bench --scale 10 --nodes 2 --roots 2 --grid 5x2")).unwrap();
        assert!(execute(cmd, &mut Vec::new()).is_err());
    }

    #[test]
    fn grid_excludes_td_alltoallv() {
        let cmd = parse(&argv("run --scale 10 --nodes 2 --grid 2x4 --td-alltoallv")).unwrap();
        let e = execute(cmd, &mut Vec::new()).unwrap_err();
        assert!(e.contains("--grid"), "{e}");
    }

    #[test]
    fn run_with_grid_and_compressed_end_to_end() {
        let cmd = parse(&argv(
            "run --scale 10 --nodes 2 --opt share-all --grid 2x8 --compressed",
        ))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2-D 2x8"), "{text}");
        assert!(text.contains("compressed CSR"), "{text}");
        assert!(text.contains("visited"), "{text}");
    }

    #[test]
    fn trace_with_grid_keeps_projection_exact() {
        let cmd = parse(&argv(
            "trace --scale 10 --nodes 2 --opt share-all --grid 2x8",
        ))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2-D 2x8"), "{text}");
        // The 2-D engine meets the same observability bar as the 1-D one.
        assert!(
            text.contains("projection == engine profile: true"),
            "{text}"
        );
    }

    #[test]
    fn bench_campaign_with_grid_end_to_end() {
        let cmd = parse(&argv(
            "bench --scale 10 --nodes 2 --roots 2 --opt share-all --grid 2x8 --compressed",
        ))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("harmonic-mean TEPS"), "{text}");
        assert!(text.contains("2-D 2x8"), "{text}");
    }

    #[test]
    fn bench_snapshot_rejects_campaign_flags() {
        let cmd = parse(&argv("bench --scale 11 --grid 2x4 --json /tmp/x.json")).unwrap();
        let e = execute(cmd, &mut Vec::new()).unwrap_err();
        assert!(e.contains("snapshot"), "{e}");
    }

    #[test]
    fn run_with_summary_g_end_to_end() {
        let cmd = parse(&argv("run --scale 10 --nodes 2 --opt ppn8 --summary-g 256")).unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("visited"), "{text}");
    }

    #[test]
    fn trace_command_end_to_end() {
        let cmd = parse(&argv("trace --scale 10 --nodes 2 --opt share-all")).unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("per-level spans"), "{text}");
        assert!(
            text.contains("collective volume ledger (codec: raw)"),
            "{text}"
        );
        assert!(text.contains("ratio"), "{text}");
        assert!(text.contains("allreduce"), "{text}");
        // The acceptance bar: trace projection reproduces the engine
        // profile bitwise, so the CLI must report an exact match.
        assert!(
            text.contains("projection == engine profile: true"),
            "{text}"
        );
        assert!(!text.contains("dropped"), "{text}");
    }

    #[test]
    fn trace_with_codec_end_to_end() {
        let run = |codec_args: &str| {
            let cmd = parse(&argv(&format!(
                "trace --scale 10 --nodes 2 --opt ppn8 {codec_args}"
            )))
            .unwrap();
            let mut buf = Vec::new();
            execute(cmd, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let raw = run("");
        let dv = run("--codec delta-varint");
        assert!(
            dv.contains("collective volume ledger (codec: delta-varint)"),
            "{dv}"
        );
        // Same BFS: the visited line is identical; only charged bytes move.
        let visited = |s: &str| s.lines().next().unwrap().to_string();
        assert_eq!(visited(&raw), visited(&dv));
    }

    #[test]
    fn trace_json_export_round_trips() {
        let path = std::env::temp_dir().join("nbfs-cli-trace.json");
        let cmd = parse(&argv(&format!(
            "trace --scale 10 --nodes 2 --json {}",
            path.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let report =
            nbfs_trace::TraceReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.schema_version, nbfs_trace::SCHEMA_VERSION);
        assert_eq!(report.meta.nodes, 2);
        assert!(!report.levels.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn bench_command_end_to_end() {
        let cmd = parse(&argv(
            "bench --scale 10 --nodes 2 --roots 2 --opt share-all",
        ))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("harmonic-mean TEPS"), "{text}");
    }

    #[test]
    fn bench_json_defaults_to_snapshot_scale() {
        match parse(&argv("bench --json out.json")).unwrap() {
            Command::Bench { scale, json, .. } => {
                assert_eq!(scale, 19, "snapshot default scale");
                assert_eq!(json, Some(PathBuf::from("out.json")));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv("bench --scale 12 --json out.json")).unwrap() {
            Command::Bench { scale, .. } => assert_eq!(scale, 12),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn bench_json_snapshot_end_to_end() {
        let path = std::env::temp_dir().join("nbfs-cli-bench-snapshot.json");
        let cmd = parse(&argv(&format!(
            "bench --scale 11 --json {}",
            path.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("identical results: true"), "{text}");
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc["scenario"]["scale"], 11);
        assert!(doc["bottom_up_speedup"].as_f64().unwrap() > 0.0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn tune_command_end_to_end() {
        let cmd = parse(&argv("tune --scale 16 --density 0.01")).unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("recommended"), "{text}");
        let bad = Command::Tune {
            scale: 16,
            density: 2.0,
        };
        assert!(execute(bad, &mut Vec::new()).is_err());
    }

    #[test]
    fn parse_chaos_flags() {
        let cmd = parse(&argv(
            "chaos --scale 10 --nodes 2 --seed 7 --json /tmp/c.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                scale: 10,
                nodes: 2,
                seed: 7,
                json: Some(PathBuf::from("/tmp/c.json")),
            }
        );
        // Defaults mirror the fast CI profile documented in usage().
        match parse(&argv("chaos")).unwrap() {
            Command::Chaos {
                scale, nodes, seed, ..
            } => {
                assert_eq!((scale, nodes, seed), (12, 4, 2012));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn chaos_command_end_to_end() {
        let path = std::env::temp_dir().join("nbfs-cli-chaos.json");
        let cmd = parse(&argv(&format!(
            "chaos --scale 9 --nodes 2 --seed 5 --json {}",
            path.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("cells passed"), "{text}");
        // Every cell of the matrix must pass: recoverable kinds converge
        // to the fault-free parents, crashes end in structured errors.
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc["seed"], 5);
        assert!(doc["passed"].as_bool().unwrap());
        let cells = doc["cells"].as_array().unwrap();
        assert_eq!(
            cells.len(),
            38,
            "6 kinds x 5 targets + 4 codec cells + 4 query-wave cells"
        );
        assert!(
            cells
                .iter()
                .any(|c| c["target"].as_str().unwrap().ends_with("+dv")),
            "codec cells present"
        );
        assert_eq!(
            cells
                .iter()
                .filter(|c| c["target"].as_str().unwrap().starts_with("query-wave"))
                .count(),
            4,
            "batched query-wave cells present"
        );
        for cell in cells {
            assert!(cell["passed"].as_bool().unwrap(), "{cell:?}");
            assert!(cell["deterministic"].as_bool().unwrap(), "{cell:?}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn parse_serve_bench_flags() {
        match parse(&argv("serve-bench --scale 10 --queries 12 --submitters 3")).unwrap() {
            Command::ServeBench {
                scale,
                queries,
                submitters,
                json,
            } => {
                assert_eq!(scale, 10);
                assert_eq!(queries, 12);
                assert_eq!(submitters, 3);
                assert!(json.is_none());
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&argv("serve-bench")).unwrap() {
            Command::ServeBench {
                scale,
                queries,
                submitters,
                ..
            } => {
                assert_eq!((scale, queries, submitters), (16, 128, 8));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn serve_bench_end_to_end() {
        let path = std::env::temp_dir().join("nbfs-cli-serve-bench.json");
        let cmd = parse(&argv(&format!(
            "serve-bench --scale 10 --queries 10 --submitters 2 --json {}",
            path.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        execute(cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("identical results: true"), "{text}");
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc["queries"], 10);
        assert_eq!(doc["batch"], 64);
        assert!(doc["identical_results"].as_bool().unwrap());
        assert!(doc["batched_qps"].as_f64().unwrap() > 0.0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn generate_info_roundtrip() {
        let dir = std::env::temp_dir().join("nbfs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let cmd = parse(&argv(&format!(
            "generate --scale 9 --out {}",
            path.display()
        )))
        .unwrap();
        execute(cmd, &mut Vec::new()).unwrap();
        let mut buf = Vec::new();
        execute(Command::Info { path: path.clone() }, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("num_vertices"), "{text}");
        std::fs::remove_file(path).unwrap();
    }
}
