//! Property-based tests for the graph substrate.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;

use nbfs_graph::edge::{Edge, EdgeList};
use nbfs_graph::io;
use nbfs_graph::rmat::{generate, scramble, RmatParams};
use nbfs_graph::{Csr, PartitionedGraph};

proptest! {
    /// The label scrambler is a bijection on [0, 2^scale) for any seed.
    #[test]
    fn scramble_bijective(scale in 1u32..14, seed in any::<u64>()) {
        let n = 1u32 << scale;
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = scramble(x, scale, seed);
            prop_assert!(y < n, "image out of range");
            prop_assert!(!seen[y as usize], "collision at {y}");
            seen[y as usize] = true;
        }
    }

    /// CSR adjacency is symmetric (undirected) and sorted for arbitrary
    /// edge lists.
    #[test]
    fn csr_symmetric_and_sorted(
        edges in prop::collection::vec((0u32..300, 0u32..300), 0..500),
    ) {
        let el = EdgeList::new(300, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        for v in 0..g.num_vertices() {
            let ns = g.neighbours(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "row {v} not strictly sorted");
            for &u in ns {
                prop_assert!(g.has_edge(u as usize, v), "asymmetric edge ({},{})", v, u);
                prop_assert_ne!(u as usize, v, "self loop survived");
            }
        }
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// Partitioning preserves adjacency and the transposed index for any
    /// part count.
    #[test]
    fn partition_preserves_structure(
        edges in prop::collection::vec((0u32..200, 0u32..200), 1..300),
        parts in 1usize..9,
    ) {
        let el = EdgeList::new(200, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        let pg = PartitionedGraph::new(&g, parts);
        for rank in 0..parts {
            let lg = pg.local(rank);
            for v in lg.vertex_range() {
                prop_assert_eq!(lg.neighbours_global(v), g.neighbours(v));
            }
        }
        // Transposed index: union over ranks equals the adjacency.
        for u in 0..g.num_vertices() {
            let mut collected: Vec<u32> = (0..parts)
                .flat_map(|r| pg.local(r).incoming_from(u).iter().map(|&(_, v)| v))
                .collect();
            collected.sort_unstable();
            prop_assert_eq!(collected, g.neighbours(u).to_vec(), "u={}", u);
        }
    }

    /// Binary and text I/O round-trip arbitrary edge lists.
    #[test]
    fn io_roundtrips(
        edges in prop::collection::vec((0u32..100, 0u32..100), 0..200),
    ) {
        let el = EdgeList::new(100, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let mut bin = Vec::new();
        io::write_binary(&mut bin, &el).unwrap();
        prop_assert_eq!(&io::read_binary(&mut bin.as_slice()).unwrap(), &el);
        let mut txt = Vec::new();
        io::write_text(&mut txt, &el).unwrap();
        prop_assert_eq!(&io::read_text(txt.as_slice(), Some(100)).unwrap(), &el);
    }

    /// The generator is deterministic and in-range for arbitrary seeds.
    #[test]
    fn generator_deterministic(seed in any::<u64>()) {
        let p = RmatParams::graph500(8, 4, seed);
        let a = generate(&p);
        let b = generate(&p);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.check_bounds().is_ok());
        prop_assert_eq!(a.len(), 256 * 4);
    }

    /// Deduplication is idempotent and never grows the list.
    #[test]
    fn dedup_idempotent(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..300),
    ) {
        let el = EdgeList::new(50, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let once = el.deduplicated();
        let twice = once.deduplicated();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.len() <= el.len());
        // Canonical, sorted, loop-free.
        for e in &once.edges {
            prop_assert!(e.u < e.v);
        }
    }
}
