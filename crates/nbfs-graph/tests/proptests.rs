//! Property-based tests for the graph substrate.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;

use nbfs_graph::edge::{Edge, EdgeList};
use nbfs_graph::io;
use nbfs_graph::rmat::{generate, generate_compressed, scramble, RmatParams};
use nbfs_graph::{CompressedCsr, Csr, GraphView, PartitionedGraph};

proptest! {
    /// The label scrambler is a bijection on [0, 2^scale) for any seed.
    #[test]
    fn scramble_bijective(scale in 1u32..14, seed in any::<u64>()) {
        let n = 1u32 << scale;
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = scramble(x, scale, seed);
            prop_assert!(y < n, "image out of range");
            prop_assert!(!seen[y as usize], "collision at {y}");
            seen[y as usize] = true;
        }
    }

    /// CSR adjacency is symmetric (undirected) and sorted for arbitrary
    /// edge lists.
    #[test]
    fn csr_symmetric_and_sorted(
        edges in prop::collection::vec((0u32..300, 0u32..300), 0..500),
    ) {
        let el = EdgeList::new(300, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        for v in 0..g.num_vertices() {
            let ns = g.neighbours(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "row {v} not strictly sorted");
            for &u in ns {
                prop_assert!(g.has_edge(u as usize, v), "asymmetric edge ({},{})", v, u);
                prop_assert_ne!(u as usize, v, "self loop survived");
            }
        }
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// Partitioning preserves adjacency and the transposed index for any
    /// part count.
    #[test]
    fn partition_preserves_structure(
        edges in prop::collection::vec((0u32..200, 0u32..200), 1..300),
        parts in 1usize..9,
    ) {
        let el = EdgeList::new(200, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        let pg = PartitionedGraph::new(&g, parts);
        for rank in 0..parts {
            let lg = pg.local(rank);
            for v in lg.vertex_range() {
                prop_assert_eq!(lg.neighbours_global(v), g.neighbours(v));
            }
        }
        // Transposed index: union over ranks equals the adjacency.
        for u in 0..g.num_vertices() {
            let mut collected: Vec<u32> = (0..parts)
                .flat_map(|r| pg.local(r).incoming_from(u).iter().map(|&(_, v)| v))
                .collect();
            collected.sort_unstable();
            prop_assert_eq!(collected, g.neighbours(u).to_vec(), "u={}", u);
        }
    }

    /// Binary and text I/O round-trip arbitrary edge lists.
    #[test]
    fn io_roundtrips(
        edges in prop::collection::vec((0u32..100, 0u32..100), 0..200),
    ) {
        let el = EdgeList::new(100, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let mut bin = Vec::new();
        io::write_binary(&mut bin, &el).unwrap();
        prop_assert_eq!(&io::read_binary(&mut bin.as_slice()).unwrap(), &el);
        let mut txt = Vec::new();
        io::write_text(&mut txt, &el).unwrap();
        prop_assert_eq!(&io::read_text(txt.as_slice(), Some(100)).unwrap(), &el);
    }

    /// The generator is deterministic and in-range for arbitrary seeds.
    #[test]
    fn generator_deterministic(seed in any::<u64>()) {
        let p = RmatParams::graph500(8, 4, seed);
        let a = generate(&p);
        let b = generate(&p);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.check_bounds().is_ok());
        prop_assert_eq!(a.len(), 256 * 4);
    }

    /// Delta-varint compression round-trips arbitrary edge lists: same
    /// counts, same degrees, same neighbour streams, same dense CSR back.
    #[test]
    fn compressed_round_trips(
        edges in prop::collection::vec((0u32..300, 0u32..300), 0..500),
    ) {
        let el = EdgeList::new(300, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        let c = CompressedCsr::from_csr(&g);
        prop_assert_eq!(c.num_vertices(), g.num_vertices());
        prop_assert_eq!(c.num_edges(), g.num_edges());
        prop_assert_eq!(c.num_arcs(), g.num_arcs());
        for v in 0..g.num_vertices() {
            prop_assert_eq!(GraphView::degree(&c, v), g.degree(v), "degree of {}", v);
            let mut ns = Vec::new();
            c.for_each_neighbour(v, |w| ns.push(w));
            prop_assert_eq!(ns, g.neighbours(v).to_vec(), "row {}", v);
        }
        prop_assert_eq!(&c.to_csr(), &g);
    }

    /// Size accounting brackets: each arc costs at least one payload byte
    /// and at most the five-byte LEB128 ceiling, and the packed offsets
    /// cost five bytes per entry — so `size_bytes` must land inside
    /// analytic bounds for any input.
    #[test]
    fn compressed_size_accounting(
        edges in prop::collection::vec((0u32..300, 0u32..300), 0..500),
    ) {
        let el = EdgeList::new(300, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let g = Csr::from_edge_list(&el);
        let c = CompressedCsr::from_csr(&g);
        let offsets = 5 * (g.num_vertices() + 1);
        prop_assert!(c.size_bytes() >= g.num_arcs() + offsets || g.num_arcs() == 0);
        prop_assert!(c.size_bytes() <= 5 * g.num_arcs() + offsets);
    }

    /// The streaming compressed build equals compressing the dense build,
    /// for any seed and any pass count.
    #[test]
    fn streaming_build_matches_dense_build(seed in any::<u64>(), passes in 1usize..5) {
        let p = RmatParams::graph500(8, 4, seed);
        let dense = Csr::from_edge_list(&generate(&p));
        let streamed = generate_compressed(&p, passes);
        prop_assert_eq!(&streamed.to_csr(), &dense, "passes={}", passes);
    }

    /// Deduplication is idempotent and never grows the list.
    #[test]
    fn dedup_idempotent(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..300),
    ) {
        let el = EdgeList::new(50, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let once = el.deduplicated();
        let twice = once.deduplicated();
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.len() <= el.len());
        // Canonical, sorted, loop-free.
        for e in &once.edges {
            prop_assert!(e.u < e.v);
        }
    }
}

/// Pinned regression for the compressed round-trip: the adversarial shapes
/// the random strategies once had to shrink to — duplicate multi-edges and
/// self loops on the id-space boundary, an empty leading row, a vertex
/// adjacent to everything (one-byte deltas), and a max-spread row (widest
/// varints). Kept as explicit inputs so the case replays on every run
/// regardless of the proptest seed.
#[test]
fn compressed_pinned_regression() {
    let edges = vec![
        Edge::new(299, 299), // self loop at the boundary
        Edge::new(299, 298),
        Edge::new(298, 299), // duplicate in the other orientation
        Edge::new(1, 299),   // max-spread row
        Edge::new(1, 2),
        Edge::new(1, 2), // duplicate multi-edge
        Edge::new(1, 150),
    ];
    let el = EdgeList::new(300, edges);
    let g = Csr::from_edge_list(&el);
    let c = CompressedCsr::from_csr(&g);
    assert_eq!(c.to_csr(), g);
    assert_eq!(GraphView::degree(&c, 0), 0, "empty leading row");
    assert_eq!(g.neighbours(1), &[2, 150, 299], "dedup + sort");
    let offsets = 5 * (g.num_vertices() + 1);
    assert!(c.size_bytes() >= g.num_arcs() + offsets);
    assert!(c.size_bytes() <= 5 * g.num_arcs() + offsets);
}

/// The headline compression claim at a scale debug builds can afford:
/// delta-varint beats the dense CSR by more than 2x on scale-16 R-MAT.
#[test]
fn compression_ratio_exceeds_two_at_scale_16() {
    let g = nbfs_graph::GraphBuilder::rmat(16, 16).seed(1).build();
    let c = CompressedCsr::from_csr(&g);
    let ratio = g.size_bytes() as f64 / c.size_bytes() as f64;
    assert!(ratio >= 2.0, "compression ratio {ratio:.2} < 2.0");
}

/// The acceptance-scale compression claim: >= 2x on the scale-19 R-MAT the
/// committed benchmark snapshot runs. Debug builds skip it (the graph
/// takes minutes to assemble unoptimized); CI runs it in release.
#[test]
#[cfg_attr(debug_assertions, ignore = "scale-19 build is release-only")]
fn compression_ratio_exceeds_two_at_scale_19() {
    let g = nbfs_graph::GraphBuilder::rmat(19, 16).seed(1).build();
    let c = CompressedCsr::from_csr(&g);
    let ratio = g.size_bytes() as f64 / c.size_bytes() as f64;
    assert!(ratio >= 2.0, "compression ratio {ratio:.2} < 2.0");
}
