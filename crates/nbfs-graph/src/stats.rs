//! Degree statistics for generated graphs.
//!
//! Used by tests to confirm the R-MAT skew and by the figure printers to
//! report workload characteristics alongside results.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;

/// Degree-distribution summary of a graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Undirected edge count.
    pub num_edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices — R-MAT graphs have many.
    pub isolated: usize,
    /// Degree of the p50/p90/p99 vertex (ascending order).
    pub p50: usize,
    /// 90th percentile degree.
    pub p90: usize,
    /// 99th percentile degree.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes the summary for `graph`.
    pub fn compute(graph: &Csr) -> Self {
        let n = graph.num_vertices();
        let mut degrees: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
        degrees.sort_unstable();
        let pick = |p: f64| degrees[((n - 1) as f64 * p) as usize];
        Self {
            num_vertices: n,
            num_edges: graph.num_edges(),
            mean_degree: graph.num_arcs() as f64 / n as f64,
            max_degree: *degrees.last().unwrap_or(&0),
            isolated: degrees.iter().take_while(|&&d| d == 0).count(),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
        }
    }

    /// Skew ratio `max / mean` (large for scale-free graphs).
    pub fn skew(&self) -> f64 {
        if self.mean_degree == 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.mean_degree
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::edge::{Edge, EdgeList};

    #[test]
    fn stats_of_path() {
        let g = Csr::from_edge_list(&EdgeList::new(
            4,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)],
        ));
        let s = DegreeStats::compute(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rmat_is_skewed_with_isolated_tail() {
        let g = GraphBuilder::rmat(12, 16).seed(8).build();
        let s = DegreeStats::compute(&g);
        assert!(s.skew() > 10.0, "R-MAT skew {}", s.skew());
        assert!(s.isolated > 0, "R-MAT graphs have isolated vertices");
        assert!(s.p99 >= s.p90 && s.p90 >= s.p50);
    }
}
