//! Fluent construction of benchmark graphs.

use crate::csr::Csr;
use crate::edge::EdgeList;
use crate::rmat::{self, RmatParams};

/// Builder for the synthetic graphs used throughout the workspace.
///
/// ```
/// use nbfs_graph::GraphBuilder;
/// let g = GraphBuilder::rmat(10, 16).seed(42).build();
/// assert_eq!(g.num_vertices(), 1024);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    params: RmatParams,
}

impl GraphBuilder {
    /// Graph500 R-MAT graph at `scale` (2^scale vertices) with the given
    /// edge factor (Graph500 uses 16).
    pub fn rmat(scale: u32, edge_factor: usize) -> Self {
        Self {
            params: RmatParams::graph500(scale, edge_factor, 0xB505_5EED),
        }
    }

    /// Sets the generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Overrides the R-MAT quadrant probabilities (must sum with D to 1).
    pub fn probabilities(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0);
        self.params.a = a;
        self.params.b = b;
        self.params.c = c;
        self
    }

    /// Generates the raw edge list (kernel-1 input).
    pub fn build_edge_list(&self) -> EdgeList {
        rmat::generate(&self.params)
    }

    /// Generates and assembles the CSR graph.
    pub fn build(&self) -> Csr {
        Csr::from_edge_list(&self.build_edge_list())
    }

    /// Generates the delta-varint compressed CSR via the streaming
    /// per-block path — never materializes the global edge list, so large
    /// scales build in a fraction of [`Self::build`]'s peak memory.
    pub fn build_compressed(&self) -> crate::CompressedCsr {
        rmat::generate_compressed(&self.params, rmat::streaming_passes(&self.params))
    }

    /// The parameters this builder will use.
    pub fn params(&self) -> &RmatParams {
        &self.params
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let g = GraphBuilder::rmat(8, 8).seed(5).build();
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 256 * 8);
    }

    #[test]
    fn same_seed_same_graph() {
        let a = GraphBuilder::rmat(9, 8).seed(3).build();
        let b = GraphBuilder::rmat(9, 8).seed(3).build();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_probabilities_apply() {
        let uniform = GraphBuilder::rmat(10, 8)
            .seed(1)
            .probabilities(0.25, 0.25, 0.25)
            .build();
        let skewed = GraphBuilder::rmat(10, 8).seed(1).build();
        // Uniform Erdos-Renyi-like graphs have a much flatter degree
        // distribution than R-MAT.
        let max_deg = |g: &crate::Csr| (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg(&skewed) > max_deg(&uniform));
    }

    #[test]
    #[should_panic]
    fn invalid_probabilities_rejected() {
        GraphBuilder::rmat(8, 8).probabilities(0.6, 0.3, 0.2);
    }
}
