//! Delta-varint compressed sparse row storage.
//!
//! The uncompressed [`Csr`] spends 8 bytes per offset and 4 per target;
//! R-MAT adjacency is highly compressible because sorted neighbour lists
//! of a scale-free graph have small gaps (hubs especially so). Each row is
//! stored as LEB128 varints — the first neighbour absolute, then strictly
//! positive gaps — and the per-vertex *byte* offsets are packed 5 bytes
//! each (`u40`: graphs up to a terabyte of adjacency bytes). On scale-19
//! R-MAT this halves the footprint (measured 2.08×; 2.45× at scale 16),
//! which is what lets scale 21–22 build in the memory scale 19 needed
//! before.
//!
//! Vertex ids pass through the [`vid`](crate::vid) sanctuary exactly like
//! the uncompressed path; nothing here narrows an id by hand (NBFS005).

use serde::{Deserialize, Serialize};

use nbfs_util::varint::{push_varint, read_varint};

use crate::csr::Csr;
use crate::view::GraphView;
use crate::VertexId;

/// Byte width of one packed offset entry (`u40`).
const OFFSET_BYTES: usize = 5;

/// `n + 1` byte offsets packed 5 bytes (little-endian) each.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct PackedOffsets {
    raw: Vec<u8>,
}

impl PackedOffsets {
    fn with_capacity(entries: usize) -> Self {
        Self {
            raw: Vec::with_capacity(entries * OFFSET_BYTES),
        }
    }

    fn push(&mut self, value: u64) {
        assert!(value < 1u64 << 40, "adjacency stream exceeds u40 offsets");
        let le = value.to_le_bytes();
        self.raw.extend_from_slice(&le[..OFFSET_BYTES]);
    }

    #[inline]
    fn get(&self, index: usize) -> u64 {
        let at = index * OFFSET_BYTES;
        let mut le = [0u8; 8];
        le[..OFFSET_BYTES].copy_from_slice(&self.raw[at..at + OFFSET_BYTES]);
        u64::from_le_bytes(le)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.raw.len() / OFFSET_BYTES
    }

    fn size_bytes(&self) -> usize {
        self.raw.len()
    }
}

/// Undirected graph in delta-varint compressed CSR form.
///
/// Construction sites: [`CompressedCsr::from_csr`] re-encodes an existing
/// [`Csr`], and [`rmat::generate_compressed`](crate::rmat::generate_compressed)
/// streams R-MAT blocks straight into this representation without ever
/// materializing the global edge list.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedCsr {
    num_vertices: usize,
    num_arcs: usize,
    offsets: PackedOffsets,
    data: Vec<u8>,
}

/// Incrementally appends encoded rows in vertex order; used by both
/// [`CompressedCsr::from_csr`] and the streaming R-MAT builder.
pub(crate) struct RowEncoder {
    num_vertices: usize,
    num_arcs: usize,
    next_row: usize,
    offsets: PackedOffsets,
    data: Vec<u8>,
}

impl RowEncoder {
    pub(crate) fn new(num_vertices: usize) -> Self {
        let mut offsets = PackedOffsets::with_capacity(num_vertices + 1);
        offsets.push(0);
        Self {
            num_vertices,
            num_arcs: 0,
            next_row: 0,
            offsets,
            data: Vec::new(),
        }
    }

    /// Appends the next vertex's sorted, deduplicated neighbour list.
    pub(crate) fn push_row(&mut self, neighbours: &[u32]) {
        debug_assert!(self.next_row < self.num_vertices, "too many rows");
        debug_assert!(
            neighbours.windows(2).all(|w| w[0] < w[1]),
            "row {} not strictly ascending",
            self.next_row
        );
        let mut prev = 0u64;
        for (i, &w) in neighbours.iter().enumerate() {
            let w = u64::from(w);
            // First neighbour absolute, then the strictly positive gaps.
            let delta = if i == 0 { w } else { w - prev };
            push_varint(&mut self.data, delta);
            prev = w;
        }
        self.num_arcs += neighbours.len();
        self.next_row += 1;
        self.offsets.push(self.data.len() as u64);
    }

    pub(crate) fn finish(self) -> CompressedCsr {
        assert_eq!(self.next_row, self.num_vertices, "missing rows");
        CompressedCsr {
            num_vertices: self.num_vertices,
            num_arcs: self.num_arcs,
            offsets: self.offsets,
            data: self.data,
        }
    }
}

impl CompressedCsr {
    /// Re-encodes an uncompressed CSR.
    pub fn from_csr(graph: &Csr) -> Self {
        let mut enc = RowEncoder::new(graph.num_vertices());
        for v in 0..graph.num_vertices() {
            enc.push_row(graph.neighbours(v));
        }
        enc.finish()
    }

    /// Expands back to the uncompressed representation (tests and
    /// one-off conversions; the engines traverse this form directly).
    pub fn to_csr(&self) -> Csr {
        let mut offsets = Vec::with_capacity(self.num_vertices + 1);
        let mut targets = Vec::with_capacity(self.num_arcs);
        offsets.push(0u64);
        for v in 0..self.num_vertices {
            self.for_each_neighbour(v, |w| targets.push(w));
            offsets.push(targets.len() as u64);
        }
        Csr::from_parts(offsets, targets)
    }

    /// Byte span of `v`'s encoded row.
    #[inline]
    fn row_span(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets.get(v) as usize,
            self.offsets.get(v + 1) as usize,
        )
    }
}

impl GraphView for CompressedCsr {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_arcs / 2
    }

    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// O(row bytes): counts the varint terminator bytes in the row span.
    fn degree(&self, v: VertexId) -> usize {
        let (start, end) = self.row_span(v);
        self.data[start..end]
            .iter()
            .filter(|&&b| b & 0x80 == 0)
            .count()
    }

    fn for_each_neighbour<F: FnMut(u32)>(&self, v: VertexId, mut f: F) {
        let (start, end) = self.row_span(v);
        let mut pos = start;
        let mut acc = 0u64;
        while pos < end {
            let (delta, next) = read_varint(&self.data, pos);
            // First value is absolute; subsequent deltas accumulate.
            acc = if pos == start { delta } else { acc + delta };
            pos = next;
            f(crate::vid::to_stored(acc as usize));
        }
    }

    /// Encoded bytes plus the packed offsets — the number the ≥2×
    /// compression acceptance test compares against [`Csr::size_bytes`].
    fn size_bytes(&self) -> usize {
        self.data.len() + self.offsets.size_bytes()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::edge::{Edge, EdgeList};

    #[test]
    fn round_trips_an_rmat_graph() {
        let g = GraphBuilder::rmat(11, 8).seed(23).build();
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.num_arcs(), g.num_arcs());
        for v in 0..g.num_vertices() {
            assert_eq!(GraphView::degree(&c, v), g.degree(v), "degree of {v}");
            let mut ns = Vec::new();
            c.for_each_neighbour(v, |w| ns.push(w));
            assert_eq!(ns, g.neighbours(v), "row {v}");
        }
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn compresses_rmat_adjacency() {
        let g = GraphBuilder::rmat(12, 16).seed(3).build();
        let c = CompressedCsr::from_csr(&g);
        assert!(
            c.size_bytes() < g.size_bytes(),
            "compressed {} !< uncompressed {}",
            c.size_bytes(),
            g.size_bytes()
        );
    }

    #[test]
    fn handles_empty_rows_and_tiny_graphs() {
        // 0 - 1, isolated 2; plus the single-vertex graph.
        let g = Csr::from_edge_list(&EdgeList::new(3, vec![Edge::new(0, 1)]));
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(GraphView::degree(&c, 2), 0);
        let mut ns = Vec::new();
        c.for_each_neighbour(2, |w| ns.push(w));
        assert!(ns.is_empty());
        assert_eq!(c.to_csr(), g);

        let lone = Csr::from_edge_list(&EdgeList::new(1, vec![]));
        let cl = CompressedCsr::from_csr(&lone);
        assert_eq!(cl.num_vertices(), 1);
        assert_eq!(cl.num_arcs(), 0);
        assert_eq!(cl.to_csr(), lone);
    }

    #[test]
    fn packed_offsets_round_trip_wide_values() {
        let mut po = PackedOffsets::with_capacity(4);
        for v in [0u64, 1, 0xff, 0xff_ffff_ffff] {
            po.push(v);
        }
        assert_eq!(po.len(), 4);
        assert_eq!(po.get(0), 0);
        assert_eq!(po.get(1), 1);
        assert_eq!(po.get(2), 0xff);
        assert_eq!(po.get(3), 0xff_ffff_ffff);
    }
}
