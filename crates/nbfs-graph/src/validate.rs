//! Graph500-style BFS tree validation.
//!
//! The Graph500 run rules require every reported BFS to pass a validation
//! kernel. Given the parent array produced by a search from `root`, we
//! check the standard five properties:
//!
//! 1. the root is its own parent;
//! 2. every tree edge `(v, parent[v])` exists in the graph;
//! 3. parent pointers form a forest rooted at `root` (no cycles, every
//!    visited vertex reaches the root);
//! 4. tree levels are BFS levels: `depth(v) == depth(parent[v]) + 1`, and
//!    no graph edge spans more than one level;
//! 5. exactly the connected component of `root` is visited (no graph edge
//!    connects a visited and an unvisited vertex).

use crate::csr::Csr;
use crate::{VertexId, NO_PARENT};

/// A violation found by [`validate_bfs_tree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// `parent[root] != root`.
    RootNotItsOwnParent,
    /// A vertex's parent edge does not exist in the graph.
    MissingTreeEdge {
        /// The child vertex.
        child: VertexId,
        /// Its claimed parent.
        parent: VertexId,
    },
    /// Parent chains contain a cycle or dangle off the tree.
    BrokenChain {
        /// A vertex whose chain never reaches the root.
        vertex: VertexId,
    },
    /// A graph edge spans two tree levels or touches an unvisited vertex.
    LevelViolation {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
    },
    /// A vertex in the root's component was not visited.
    ComponentNotCovered {
        /// The missed vertex.
        vertex: VertexId,
    },
    /// The parent array has the wrong length.
    WrongLength,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::RootNotItsOwnParent => write!(f, "root is not its own parent"),
            ValidationError::MissingTreeEdge { child, parent } => {
                write!(f, "tree edge ({child}, {parent}) missing from graph")
            }
            ValidationError::BrokenChain { vertex } => {
                write!(f, "parent chain from {vertex} never reaches the root")
            }
            ValidationError::LevelViolation { u, v } => {
                write!(f, "edge ({u}, {v}) violates BFS level property")
            }
            ValidationError::ComponentNotCovered { vertex } => {
                write!(f, "vertex {vertex} is reachable but unvisited")
            }
            ValidationError::WrongLength => write!(f, "parent array has wrong length"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Depth of every visited vertex, or an error if chains are broken.
fn compute_depths(
    graph: &Csr,
    root: VertexId,
    parent: &[u32],
) -> Result<Vec<u32>, ValidationError> {
    const UNKNOWN: u32 = u32::MAX;
    let n = graph.num_vertices();
    let mut depth = vec![UNKNOWN; n];
    depth[root] = 0;
    for v in 0..n {
        if parent[v] == NO_PARENT || depth[v] != UNKNOWN {
            continue;
        }
        // Walk up until a vertex of known depth, collecting the path.
        let mut path = Vec::new();
        let mut cur = v;
        while depth[cur] == UNKNOWN {
            path.push(cur);
            if path.len() > n {
                return Err(ValidationError::BrokenChain { vertex: v });
            }
            let p = parent[cur];
            if p == NO_PARENT {
                return Err(ValidationError::BrokenChain { vertex: v });
            }
            cur = p as usize;
        }
        let mut d = depth[cur];
        for &w in path.iter().rev() {
            d += 1;
            depth[w] = d;
        }
    }
    Ok(depth)
}

/// Validates `parent` as a BFS tree of `graph` rooted at `root`.
///
/// Returns the number of visited vertices on success.
#[allow(clippy::needless_range_loop)] // walks several parallel arrays by index
pub fn validate_bfs_tree(
    graph: &Csr,
    root: VertexId,
    parent: &[u32],
) -> Result<usize, ValidationError> {
    let n = graph.num_vertices();
    if parent.len() != n {
        return Err(ValidationError::WrongLength);
    }
    // (1) root self-parented.
    if parent[root] as usize != root {
        return Err(ValidationError::RootNotItsOwnParent);
    }
    // (2) tree edges exist.
    for v in 0..n {
        let p = parent[v];
        if p == NO_PARENT || v == root {
            continue;
        }
        if !graph.has_edge(v, p as usize) {
            return Err(ValidationError::MissingTreeEdge {
                child: v,
                parent: p as usize,
            });
        }
    }
    // (3) chains reach the root; compute depths.
    let depth = compute_depths(graph, root, parent)?;
    // (4) depth(child) = depth(parent) + 1 and no edge skips a level;
    // (5) no edge crosses the visited/unvisited boundary.
    for v in 0..n {
        if parent[v] != NO_PARENT && v != root {
            let p = parent[v] as usize;
            if depth[v] != depth[p] + 1 {
                return Err(ValidationError::LevelViolation { u: v, v: p });
            }
        }
        for &w in graph.neighbours(v) {
            let w = w as usize;
            let dv = parent[v] != NO_PARENT;
            let dw = parent[w] != NO_PARENT;
            match (dv, dw) {
                (true, true) => {
                    let (a, b) = (depth[v], depth[w]);
                    if a.abs_diff(b) > 1 {
                        return Err(ValidationError::LevelViolation { u: v, v: w });
                    }
                }
                (true, false) => return Err(ValidationError::ComponentNotCovered { vertex: w }),
                (false, true) => return Err(ValidationError::ComponentNotCovered { vertex: v }),
                (false, false) => {}
            }
        }
    }
    Ok(parent.iter().filter(|&&p| p != NO_PARENT).count())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::edge::{Edge, EdgeList};

    fn tiny() -> Csr {
        // 0-1, 0-2, 1-3, 2-3 (diamond), 4 isolated
        Csr::from_edge_list(&EdgeList::new(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        ))
    }

    fn reference_bfs(g: &Csr, root: usize) -> Vec<u32> {
        let mut parent = vec![NO_PARENT; g.num_vertices()];
        parent[root] = root as u32;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbours(u) {
                let w = w as usize;
                if parent[w] == NO_PARENT {
                    parent[w] = u as u32;
                    queue.push_back(w);
                }
            }
        }
        parent
    }

    #[test]
    fn accepts_correct_tree() {
        let g = tiny();
        let parent = reference_bfs(&g, 0);
        let visited = validate_bfs_tree(&g, 0, &parent).unwrap();
        assert_eq!(visited, 4, "isolated vertex 4 unvisited");
    }

    #[test]
    fn rejects_wrong_root() {
        let g = tiny();
        let mut parent = reference_bfs(&g, 0);
        parent[0] = 1;
        assert_eq!(
            validate_bfs_tree(&g, 0, &parent),
            Err(ValidationError::RootNotItsOwnParent)
        );
    }

    #[test]
    fn rejects_fake_edge() {
        let g = tiny();
        let mut parent = reference_bfs(&g, 0);
        parent[3] = 0; // 0-3 is not an edge of the diamond
        assert!(matches!(
            validate_bfs_tree(&g, 0, &parent),
            Err(ValidationError::MissingTreeEdge {
                child: 3,
                parent: 0
            })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let g = Csr::from_edge_list(&EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 1),
            ],
        ));
        let mut parent = reference_bfs(&g, 0);
        // 1 -> 2 -> 3 -> 1 cycle, detached from the root.
        parent[1] = 3;
        parent[2] = 1;
        parent[3] = 2;
        assert!(matches!(
            validate_bfs_tree(&g, 0, &parent),
            Err(ValidationError::BrokenChain { .. })
        ));
    }

    #[test]
    fn rejects_level_skip() {
        // Path 0-1-2; claim parent[2] = 1 but also parent[1] = ... correct;
        // we instead fabricate: path 0-1, 1-2, 2-3 and set parent[3]=2 but
        // depth mangled by rerooting 2 at 0 via a fake shortcut edge 0-2.
        let g = Csr::from_edge_list(&EdgeList::new(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(0, 2),
            ],
        ));
        let mut parent = reference_bfs(&g, 0);
        // Correct BFS: depth(2) = 1 via edge 0-2. Force 2 under 1's subtree
        // at depth 2: now edge (0,2) spans levels 0 and 2.
        parent[2] = 1;
        assert!(matches!(
            validate_bfs_tree(&g, 0, &parent),
            Err(ValidationError::LevelViolation { .. })
        ));
    }

    #[test]
    fn rejects_unvisited_reachable() {
        let g = tiny();
        let mut parent = reference_bfs(&g, 0);
        parent[3] = NO_PARENT; // 3 is reachable but claimed unvisited
        assert!(matches!(
            validate_bfs_tree(&g, 0, &parent),
            Err(ValidationError::ComponentNotCovered { .. })
        ));
    }

    #[test]
    fn rejects_wrong_length() {
        let g = tiny();
        assert_eq!(
            validate_bfs_tree(&g, 0, &[0]),
            Err(ValidationError::WrongLength)
        );
    }

    #[test]
    fn validates_rmat_reference_bfs() {
        let g = GraphBuilder::rmat(10, 8).seed(6).build();
        let parent = reference_bfs(&g, 0);
        let visited = validate_bfs_tree(&g, 0, &parent).unwrap();
        assert_eq!(visited, g.component_of(0).len());
    }

    #[test]
    fn error_display() {
        let e = ValidationError::MissingTreeEdge {
            child: 1,
            parent: 2,
        };
        assert!(e.to_string().contains("(1, 2)"));
    }
}
