//! 1-D block distribution of the graph across ranks.
//!
//! Exactly like the Graph500 reference codes the paper builds on: "the
//! entire graph is partitioned into *np* parts ... each MPI process holds
//! one part of graph" (Section II.A). Rank `p` owns a contiguous,
//! word-aligned block of vertex ids and the full adjacency lists of those
//! vertices; neighbour ids remain global, because frontier bitmaps are
//! full-length and reassembled by allgather.

use serde::{Deserialize, Serialize};

use nbfs_util::BlockPartition;

use crate::view::GraphView;
use crate::VertexId;

/// The rows of the CSR owned by one rank.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalGraph {
    rank: usize,
    first_vertex: VertexId,
    offsets: Vec<u64>,
    targets: Vec<u32>,
    /// The rank's edges transposed: `(source, owned target)`, sorted by
    /// source then target. The top-down phase of the replicated hybrid
    /// implementation iterates the *global* frontier and looks up, per
    /// frontier vertex, which of its neighbours this rank owns — exactly
    /// what this index answers (the Graph500 `mpi_replicated` code keeps
    /// the same transposed structure).
    incoming: Vec<(u32, u32)>,
}

impl LocalGraph {
    /// Owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// First owned global vertex id.
    pub fn first_vertex(&self) -> VertexId {
        self.first_vertex
    }

    /// Number of owned vertices.
    pub fn num_local_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Global ids of the owned vertex range.
    pub fn vertex_range(&self) -> std::ops::Range<VertexId> {
        self.first_vertex..self.first_vertex + self.num_local_vertices()
    }

    /// Degree of the owned vertex with *global* id `v`.
    #[inline]
    pub fn degree_global(&self, v: VertexId) -> usize {
        let l = v - self.first_vertex;
        (self.offsets[l + 1] - self.offsets[l]) as usize
    }

    /// Neighbours (global ids, ascending) of the owned vertex with *global*
    /// id `v`.
    #[inline]
    pub fn neighbours_global(&self, v: VertexId) -> &[u32] {
        let l = v - self.first_vertex;
        &self.targets[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Directed arcs stored locally.
    pub fn num_local_arcs(&self) -> usize {
        self.targets.len()
    }

    /// The owned targets of edges leaving global vertex `u` (ascending),
    /// looked up in the transposed index. Empty when no edge from `u`
    /// lands in this rank's block.
    pub fn incoming_from(&self, u: VertexId) -> &[(u32, u32)] {
        let u = crate::vid::to_stored(u);
        let start = self.incoming.partition_point(|&(s, _)| s < u);
        let end = start + self.incoming[start..].partition_point(|&(s, _)| s == u);
        &self.incoming[start..end]
    }

    /// The whole transposed index: `(source, owned target)` arcs sorted by
    /// source then target. The chunked top-down kernel merge-joins the
    /// sorted frontier against this array directly (and splits it into
    /// fixed arc-count chunks), instead of running one binary search per
    /// frontier vertex through [`Self::incoming_from`].
    pub fn incoming_arcs(&self) -> &[(u32, u32)] {
        &self.incoming
    }

    /// Size of the transposed index in bytes (per-probe working set of the
    /// top-down lookup).
    pub fn incoming_size_bytes(&self) -> usize {
        self.incoming.len() * 8
    }

    /// Approximate local memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4 + self.incoming.len() * 8
    }
}

/// The whole graph, split into per-rank [`LocalGraph`]s.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionedGraph {
    num_vertices: usize,
    num_edges: usize,
    locals: Vec<LocalGraph>,
}

impl PartitionedGraph {
    /// Splits `graph` into `parts` word-aligned blocks. Generic over the
    /// storage so the compressed CSR is distributed by streaming each
    /// row's decode once, without first expanding the whole graph.
    pub fn new<G: GraphView>(graph: &G, parts: usize) -> Self {
        let n = graph.num_vertices();
        let part = BlockPartition::new(n, parts);
        let locals = (0..parts)
            .map(|rank| {
                let (start, end) = part.item_range(rank);
                let mut offsets = Vec::with_capacity(end - start + 1);
                offsets.push(0u64);
                let mut targets = Vec::new();
                // Transpose: for every owned target v and neighbour u,
                // record (u, v). The graph is undirected, so the local CSR
                // rows already contain every edge incident to the block.
                // (Padded vertices past `n` in the word-aligned last block
                // are recorded as degree-0 rows, as before.)
                let mut incoming: Vec<(u32, u32)> = Vec::new();
                for v in start..end {
                    if v < n {
                        graph.for_each_neighbour(v, |u| {
                            targets.push(u);
                            incoming.push((u, crate::vid::to_stored(v)));
                        });
                    }
                    offsets.push(targets.len() as u64);
                }
                incoming.sort_unstable();
                LocalGraph {
                    rank,
                    first_vertex: start,
                    offsets,
                    targets,
                    incoming,
                }
            })
            .collect();
        Self {
            num_vertices: n,
            num_edges: graph.num_edges(),
            locals,
        }
    }

    /// The ownership partition (word-aligned blocks).
    pub fn partition(&self) -> BlockPartition {
        BlockPartition::new(self.num_vertices, self.locals.len())
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.locals.len()
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Global undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The rows owned by `rank`.
    pub fn local(&self, rank: usize) -> &LocalGraph {
        &self.locals[rank]
    }

    /// Owner rank of global vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        self.partition().owner(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn partition_preserves_all_adjacency() {
        let g = GraphBuilder::rmat(9, 8).seed(4).build();
        for parts in [1usize, 2, 3, 8] {
            let pg = PartitionedGraph::new(&g, parts);
            assert_eq!(pg.parts(), parts);
            assert_eq!(pg.num_vertices(), g.num_vertices());
            assert_eq!(pg.num_edges(), g.num_edges());
            let mut covered = 0usize;
            for rank in 0..parts {
                let lg = pg.local(rank);
                for v in lg.vertex_range() {
                    assert_eq!(
                        lg.neighbours_global(v),
                        g.neighbours(v),
                        "adjacency mismatch at v={v}, parts={parts}"
                    );
                    assert_eq!(lg.degree_global(v), g.degree(v));
                    covered += 1;
                }
            }
            assert_eq!(covered, g.num_vertices(), "parts={parts}");
        }
    }

    #[test]
    fn arcs_sum_to_total() {
        let g = GraphBuilder::rmat(10, 8).seed(9).build();
        let pg = PartitionedGraph::new(&g, 5);
        let total: usize = (0..5).map(|r| pg.local(r).num_local_arcs()).sum();
        assert_eq!(total, g.num_arcs());
    }

    #[test]
    fn owner_matches_ranges() {
        let g = GraphBuilder::rmat(8, 8).seed(2).build();
        let pg = PartitionedGraph::new(&g, 3);
        for rank in 0..3 {
            for v in pg.local(rank).vertex_range() {
                assert_eq!(pg.owner(v), rank);
            }
        }
    }

    #[test]
    fn incoming_index_matches_forward_adjacency() {
        let g = GraphBuilder::rmat(9, 8).seed(4).build();
        let pg = PartitionedGraph::new(&g, 4);
        for u in 0..g.num_vertices() {
            // Union over ranks of incoming_from(u) must equal u's
            // neighbourhood, and every listed target must be owned.
            let mut collected: Vec<u32> = Vec::new();
            for rank in 0..4 {
                let lg = pg.local(rank);
                for &(src, dst) in lg.incoming_from(u) {
                    assert_eq!(src as usize, u);
                    assert_eq!(pg.owner(dst as usize), rank);
                    collected.push(dst);
                }
            }
            collected.sort_unstable();
            assert_eq!(collected, g.neighbours(u), "u={u}");
        }
    }

    #[test]
    fn incoming_lookup_of_absent_source_is_empty() {
        let g = GraphBuilder::rmat(8, 4).seed(11).build();
        let pg = PartitionedGraph::new(&g, 2);
        let isolated = (0..g.num_vertices()).find(|&v| g.degree(v) == 0).unwrap();
        for rank in 0..2 {
            assert!(pg.local(rank).incoming_from(isolated).is_empty());
        }
    }

    #[test]
    fn single_part_is_whole_graph() {
        let g = GraphBuilder::rmat(8, 8).seed(2).build();
        let pg = PartitionedGraph::new(&g, 1);
        let lg = pg.local(0);
        assert_eq!(lg.num_local_vertices(), g.num_vertices());
        assert_eq!(lg.num_local_arcs(), g.num_arcs());
    }
}
