//! Compressed sparse row adjacency storage.
//!
//! The BFS kernels stream `offsets`/`targets` sequentially per vertex and
//! probe bitmaps per neighbour; CSR keeps the streamed side dense and
//! cache-friendly. Graphs are undirected: every deduplicated edge appears
//! in both endpoints' adjacency lists, sorted ascending (which also makes
//! the bottom-up "first set neighbour wins" parent rule deterministic).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::edge::EdgeList;
use crate::VertexId;

/// Undirected graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds the CSR from an edge list. The list is deduplicated first
    /// (self loops dropped, duplicate edges collapsed), then both
    /// directions are inserted.
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let el = edges.deduplicated();
        let n = el.num_vertices;
        let mut degree = vec![0u64; n];
        for e in &el.edges {
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for e in &el.edges {
            targets[cursor[e.u as usize] as usize] = e.v;
            cursor[e.u as usize] += 1;
            targets[cursor[e.v as usize] as usize] = e.u;
            cursor[e.v as usize] += 1;
        }
        // Sort each adjacency list for deterministic traversal order.
        {
            let mut rows: Vec<&mut [u32]> = Vec::with_capacity(n);
            let mut rest: &mut [u32] = &mut targets;
            for i in 0..n {
                let len = (offsets[i + 1] - offsets[i]) as usize;
                let (row, tail) = rest.split_at_mut(len);
                rows.push(row);
                rest = tail;
            }
            rows.par_iter_mut().for_each(|row| row.sort_unstable());
        }
        Csr { offsets, targets }
    }

    /// Reassembles a CSR from raw arrays (crate-internal: the compressed
    /// decoder). `offsets` must be monotone with `offsets[0] == 0` and
    /// rows must be strictly ascending.
    pub(crate) fn from_parts(offsets: Vec<u64>, targets: Vec<u32>) -> Self {
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last().copied(), Some(targets.len() as u64));
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of stored directed arcs (twice the undirected edge count).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v`, ascending.
    #[inline]
    pub fn neighbours(&self, v: VertexId) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The raw offsets array (len `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw targets array.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Approximate in-memory footprint in bytes (what the cost model calls
    /// "the graph", to which bitmaps are compared in Section III.A.1a).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.targets.len() * 4
    }

    /// Does the undirected edge `(u, v)` exist?
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbours(u)
            .binary_search(&crate::vid::to_stored(v))
            .is_ok()
    }

    /// Vertices of the connected component containing `root`, found by a
    /// simple sequential BFS (used by tests and the validator — not one of
    /// the measured kernels).
    pub fn component_of(&self, root: VertexId) -> Vec<VertexId> {
        let mut seen = vec![false; self.num_vertices()];
        let mut queue = std::collections::VecDeque::from([root]);
        seen[root] = true;
        let mut out = vec![root];
        while let Some(u) = queue.pop_front() {
            for &w in self.neighbours(u) {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out
    }

    /// Number of undirected edges with both endpoints inside the component
    /// of `root` — the Graph500 "traversed edges" numerator for TEPS.
    pub fn component_edges(&self, root: VertexId) -> usize {
        let comp = self.component_of(root);
        let mut in_comp = vec![false; self.num_vertices()];
        for &v in &comp {
            in_comp[v] = true;
        }
        let arcs: usize = comp.iter().map(|&v| self.degree(v)).sum();
        debug_assert!(
            comp.iter()
                .all(|&v| self.neighbours(v).iter().all(|&w| in_comp[w as usize])),
            "component must be closed"
        );
        arcs / 2
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::edge::{Edge, EdgeList};

    fn path_graph() -> Csr {
        // 0 - 1 - 2 - 3, plus isolated 4
        Csr::from_edge_list(&EdgeList::new(
            5,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)],
        ))
    }

    #[test]
    fn basic_shape() {
        let g = path_graph();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbours(1), &[0, 2]);
        assert_eq!(g.neighbours(4), &[] as &[u32]);
    }

    #[test]
    fn both_directions_present_and_sorted() {
        let g = Csr::from_edge_list(&EdgeList::new(
            4,
            vec![Edge::new(3, 0), Edge::new(2, 0), Edge::new(1, 0)],
        ));
        assert_eq!(g.neighbours(0), &[1, 2, 3]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn has_edge_pins_hub_membership() {
        // A hub adjacent to every odd vertex: the binary search must agree
        // with a linear membership scan across the whole id space,
        // including both row boundaries and the just-outside ids.
        let n = 1001usize;
        let edges: Vec<Edge> = (1..n).step_by(2).map(|v| Edge::new(0, v)).collect();
        let g = Csr::from_edge_list(&EdgeList::new(n, edges));
        assert_eq!(g.degree(0), 500);
        for v in 0..n {
            let expected = v % 2 == 1;
            assert_eq!(g.has_edge(0, v), expected, "hub membership of {v}");
            assert_eq!(g.has_edge(v, 0), expected, "symmetric membership of {v}");
        }
        assert!(g.has_edge(0, 1), "first neighbour");
        assert!(g.has_edge(0, 999), "last neighbour");
        assert!(!g.has_edge(0, 0), "no self loop");
        assert!(!g.has_edge(0, 1000), "one past the last neighbour");
    }

    #[test]
    fn duplicates_and_loops_ignored() {
        let g = Csr::from_edge_list(&EdgeList::new(
            3,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(0, 1),
                Edge::new(2, 2),
            ],
        ));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn component_discovery() {
        let g = path_graph();
        let mut comp = g.component_of(2);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2, 3]);
        assert_eq!(g.component_of(4), vec![4]);
        assert_eq!(g.component_edges(0), 3);
        assert_eq!(g.component_edges(4), 0);
    }

    #[test]
    fn size_accounting() {
        let g = path_graph();
        assert_eq!(g.size_bytes(), 6 * 8 + 6 * 4);
    }
}
