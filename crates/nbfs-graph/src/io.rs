//! Edge-list I/O: the Graph500 edge-file formats.
//!
//! The Graph500 benchmark materializes the generated edge list before
//! kernel 1; downstream users often want to persist or import graphs. Two
//! formats are supported:
//!
//! * **binary** — the Graph500 "packed edge" layout: little-endian pairs
//!   of vertex ids. We use `u32` pairs (scales ≤ 31, this crate's range)
//!   with an 16-byte header carrying a magic, the vertex count and the
//!   edge count, so truncated or foreign files are rejected instead of
//!   mis-parsed.
//! * **text** — one `u v` pair per line, `#` comments allowed; the common
//!   interchange format of SNAP and friends.
//!
//! All functions return [`nbfs_util::Result`]: transport failures surface
//! as [`NbfsError::Io`], format violations as [`NbfsError::InvalidData`].

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use nbfs_util::{NbfsError, Result};

use crate::edge::{Edge, EdgeList};

const MAGIC: &[u8; 8] = b"NBFSEDG1";

/// Writes the binary format to `w`.
pub fn write_binary<W: Write>(w: &mut W, edges: &EdgeList) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(edges.num_vertices as u64).to_le_bytes())?;
    w.write_all(&(edges.edges.len() as u64).to_le_bytes())?;
    for e in &edges.edges {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads the binary format from `r`.
pub fn read_binary<R: Read>(r: &mut R) -> Result<EdgeList> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NbfsError::invalid_data("not an nbfs edge file (bad magic)"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let num_vertices = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let num_edges = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(num_edges);
    let mut buf4 = [0u8; 4];
    for _ in 0..num_edges {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        if u as usize >= num_vertices || v as usize >= num_vertices {
            return Err(NbfsError::invalid_data(format!(
                "edge ({u}, {v}) out of range {num_vertices}"
            )));
        }
        edges.push(Edge { u, v });
    }
    Ok(EdgeList::new(num_vertices, edges))
}

/// Writes the text format (`u v` per line) to `w`.
pub fn write_text<W: Write>(w: &mut W, edges: &EdgeList) -> Result<()> {
    writeln!(
        w,
        "# nbfs edge list: {} vertices, {} edges",
        edges.num_vertices,
        edges.edges.len()
    )?;
    for e in &edges.edges {
        writeln!(w, "{} {}", e.u, e.v)?;
    }
    Ok(())
}

/// Reads the text format. The vertex-id space is sized by the maximum id
/// seen (plus one), or can be forced with `num_vertices`.
pub fn read_text<R: Read>(r: R, num_vertices: Option<usize>) -> Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32> {
            tok.ok_or_else(|| {
                NbfsError::invalid_data(format!("line {}: expected two vertex ids", lineno + 1))
            })?
            .parse()
            .map_err(|e| NbfsError::invalid_data(format!("line {}: {e}", lineno + 1)))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push(Edge { u, v });
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let el = EdgeList::new(n, edges);
    el.check_bounds().map_err(NbfsError::invalid_data)?;
    Ok(el)
}

/// Writes `edges` to `path`, picking the format from the extension
/// (`.txt`/`.el` → text, anything else → binary).
pub fn save(path: &Path, edges: &EdgeList) -> Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    match path.extension().and_then(|e| e.to_str()) {
        Some("txt") | Some("el") => write_text(&mut w, edges),
        _ => write_binary(&mut w, edges),
    }
}

/// Loads an edge list from `path`, picking the format from the extension.
pub fn load(path: &Path) -> Result<EdgeList> {
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("txt") | Some("el") => read_text(f, None),
        _ => read_binary(&mut BufReader::new(f)),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> EdgeList {
        GraphBuilder::rmat(8, 4).seed(11).build_edge_list()
    }

    #[test]
    fn binary_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        let back = read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn text_roundtrip() {
        let el = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &el).unwrap();
        let back = read_text(buf.as_slice(), Some(el.num_vertices)).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn text_infers_vertex_count() {
        let input = "# comment\n0 5\n3 2\n\n";
        let el = read_text(input.as_bytes(), None).unwrap();
        assert_eq!(el.num_vertices, 6);
        assert_eq!(el.edges.len(), 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00";
        let err = read_binary(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NbfsError::InvalidData(_)), "{err}");
    }

    #[test]
    fn truncated_binary_rejected() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &el).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NbfsError::Io(_)), "{err}");
    }

    #[test]
    fn out_of_range_binary_edge_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes()); // 2 vertices
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 edge
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // vertex 7 out of range
        let err = read_binary(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, NbfsError::InvalidData(_)), "{err}");
    }

    #[test]
    fn malformed_text_rejected() {
        assert!(read_text("0".as_bytes(), None).is_err());
        assert!(read_text("a b".as_bytes(), None).is_err());
    }

    #[test]
    fn save_load_by_extension() {
        let el = sample();
        let dir = std::env::temp_dir().join("nbfs-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["g.bin", "g.txt"] {
            let path = dir.join(name);
            save(&path, &el).unwrap();
            let back = load(&path).unwrap();
            assert_eq!(el, back, "{name}");
            std::fs::remove_file(&path).unwrap();
        }
    }
}
