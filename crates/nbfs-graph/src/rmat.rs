//! R-MAT / Kronecker edge generation per the Graph500 specification.
//!
//! Each edge picks one quadrant of the adjacency matrix per scale level
//! with probabilities `A = 0.57, B = 0.19, C = 0.19, D = 0.05` (Chakrabarti
//! et al. \[13\]; the Graph500 parameters). The resulting labels are then
//! *scrambled* by a pseudorandom permutation so that vertex id correlates
//! with nothing — the reference implementation does the same so kernels
//! cannot exploit generation locality.
//!
//! Randomness is counter-based ([`nbfs_util::rng::counter_u64`]): edge `i`'s
//! draws are a pure function of `(seed, i)`, so generation is reproducible,
//! order-independent and embarrassingly parallel.

use rayon::prelude::*;

use nbfs_util::rng::{counter_u64, splitmix64};

use crate::compressed::{CompressedCsr, RowEncoder};
use crate::edge::{Edge, EdgeList};

/// Graph500 R-MAT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// log2 of the number of vertices (Graph500 `SCALE`).
    pub scale: u32,
    /// Edges generated per vertex (Graph500 uses 16).
    pub edge_factor: usize,
    /// Quadrant probability A (top-left).
    pub a: f64,
    /// Quadrant probability B (top-right).
    pub b: f64,
    /// Quadrant probability C (bottom-left). `D = 1 - A - B - C`.
    pub c: f64,
    /// Generator seed.
    pub seed: u64,
}

impl RmatParams {
    /// The Graph500 defaults at a given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        assert!((1..=31).contains(&scale), "supported scales: 1..=31");
        assert!(edge_factor >= 1);
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated (raw) edges.
    pub fn num_edges(&self) -> usize {
        self.num_vertices() * self.edge_factor
    }
}

/// Generates the raw edge list (with duplicates and self loops, like the
/// Graph500 edge file). Runs in parallel; output is independent of thread
/// count.
pub fn generate(params: &RmatParams) -> EdgeList {
    let n = params.num_vertices();
    let m = params.num_edges();
    let edges: Vec<Edge> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let (u, v) = rmat_edge(params, i);
            Edge {
                u: scramble(u, params.scale, params.seed),
                v: scramble(v, params.scale, params.seed),
            }
        })
        .collect();
    EdgeList::new(n, edges)
}

/// Builds the delta-varint [`CompressedCsr`] straight from the counter
/// stream, one contiguous vertex block per pass, without ever holding the
/// global edge list (or the uncompressed CSR) in memory.
///
/// Each pass regenerates the whole deterministic edge stream and keeps
/// only the arcs whose *source* falls in the pass's vertex block — both
/// directions of every raw edge are considered, self loops dropped and
/// duplicates collapsed per row, so the result is structurally identical
/// to `Csr::from_edge_list(&generate(params))` re-encoded. Peak transient
/// memory is `O(num_arcs / passes)` instead of `O(num_edges)`; the price
/// is `passes` regenerations of the (embarrassingly parallel, cheap)
/// counter stream.
pub fn generate_compressed(params: &RmatParams, passes: usize) -> CompressedCsr {
    let n = params.num_vertices();
    let m = params.num_edges() as u64;
    let passes = passes.clamp(1, n);
    let mut enc = RowEncoder::new(n);
    let mut row: Vec<u32> = Vec::new();
    for pass in 0..passes {
        let lo = (n * pass / passes) as u64;
        let hi = (n * (pass + 1) / passes) as u64;
        let mut arcs: Vec<(u32, u32)> = (0..m)
            .into_par_iter()
            .flat_map_iter(|i| {
                let (u, v) = rmat_edge(params, i);
                let u = scramble(u, params.scale, params.seed);
                let v = scramble(v, params.scale, params.seed);
                let keep =
                    |s: u32, t: u32| (s != t && (lo..hi).contains(&u64::from(s))).then_some((s, t));
                keep(u, v).into_iter().chain(keep(v, u))
            })
            .collect();
        arcs.sort_unstable();
        let mut cursor = 0usize;
        for v in lo..hi {
            row.clear();
            while cursor < arcs.len() && u64::from(arcs[cursor].0) == v {
                row.push(arcs[cursor].1);
                cursor += 1;
            }
            row.dedup();
            enc.push_row(&row);
        }
        debug_assert_eq!(cursor, arcs.len(), "arcs outside pass block");
    }
    enc.finish()
}

/// Pass count for [`generate_compressed`] that bounds the per-pass arc
/// buffer near 16 M entries (~128 MB transient).
pub fn streaming_passes(params: &RmatParams) -> usize {
    const TARGET_ARCS_PER_PASS: usize = 1 << 24;
    // Raw arcs (before dedup) upper-bound the per-pass buffer.
    (2 * params.num_edges())
        .div_ceil(TARGET_ARCS_PER_PASS)
        .max(1)
}

/// The unscrambled endpoints of edge `i`.
fn rmat_edge(params: &RmatParams, i: u64) -> (u32, u32) {
    let mut u: u32 = 0;
    let mut v: u32 = 0;
    let ab = params.a + params.b;
    let c_norm = params.c / (1.0 - ab);
    let a_norm = params.a / ab;
    for level in 0..params.scale {
        // Two independent uniforms per level from the counter stream.
        let r1 = to_f64(counter_u64(params.seed, i, 2 * level));
        let r2 = to_f64(counter_u64(params.seed, i, 2 * level + 1));
        // Standard Graph500 formulation with per-level noise-free choice:
        // first decide top/bottom half, then left/right within it.
        let bottom = r1 > ab;
        let right = r2 > if bottom { c_norm } else { a_norm };
        u = (u << 1) | u32::from(bottom);
        v = (v << 1) | u32::from(right);
    }
    (u, v)
}

#[inline]
fn to_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Pseudorandom permutation of the vertex id space `[0, 2^scale)`.
///
/// A 4-round balanced Feistel network keyed by the seed operates on
/// `2 * ceil(scale/2)` bits; for odd scales the Feistel domain is twice the
/// id space, so out-of-range outputs are *cycle-walked* (the Feistel is
/// applied again until the value lands in range). Both constructions are
/// bijective, so the composition is a permutation of `[0, 2^scale)` —
/// stateless and O(1) per lookup.
pub fn scramble(x: u32, scale: u32, seed: u64) -> u32 {
    let n: u64 = 1 << scale;
    let half = scale.div_ceil(2);
    let mask: u32 = (1u32 << half) - 1;
    debug_assert!(u64::from(x) < n);
    let mut y = x;
    loop {
        let mut l = (y >> half) & mask;
        let mut r = y & mask;
        for round in 0..4u64 {
            let f = (splitmix64(seed ^ (round << 56) ^ u64::from(r)) as u32) & mask;
            let (nl, nr) = (r, l ^ f);
            l = nl;
            r = nr;
        }
        y = (l << half) | r;
        if u64::from(y) < n {
            return y;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_runs() {
        let p = RmatParams::graph500(10, 8, 42);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RmatParams::graph500(10, 8, 1));
        let b = generate(&RmatParams::graph500(10, 8, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn edge_counts_match_spec() {
        let p = RmatParams::graph500(8, 16, 7);
        let el = generate(&p);
        assert_eq!(el.num_vertices, 256);
        assert_eq!(el.len(), 256 * 16);
        el.check_bounds().unwrap();
    }

    #[test]
    fn scramble_is_a_bijection() {
        for scale in [1u32, 2, 3, 7, 10] {
            let n = 1u32 << scale;
            let images: HashSet<u32> = (0..n).map(|x| scramble(x, scale, 99)).collect();
            assert_eq!(images.len(), n as usize, "scale {scale} not bijective");
            for &y in &images {
                assert!(y < n, "scale {scale} image {y} out of range");
            }
        }
    }

    #[test]
    fn scramble_actually_permutes() {
        let moved = (0..1024u32).filter(|&x| scramble(x, 10, 5) != x).count();
        assert!(moved > 900, "only {moved}/1024 labels moved");
    }

    #[test]
    fn skew_produces_heavy_hitters() {
        // R-MAT with A=0.57 is scale-free-ish: the max degree must be far
        // above the mean degree.
        let p = RmatParams::graph500(12, 16, 3);
        let el = generate(&p).deduplicated();
        let mut deg = vec![0usize; el.num_vertices];
        for e in &el.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "max degree {max} vs mean {mean}: not skewed enough for R-MAT"
        );
    }

    #[test]
    fn streaming_compressed_build_matches_materialized_path() {
        use crate::Csr;
        let p = RmatParams::graph500(11, 16, 23);
        let reference = Csr::from_edge_list(&generate(&p));
        for passes in [1usize, 3, 7] {
            let c = generate_compressed(&p, passes);
            assert_eq!(c.to_csr(), reference, "passes={passes}");
        }
        assert!(streaming_passes(&p) >= 1);
    }

    #[test]
    fn generation_is_thread_count_independent() {
        let p = RmatParams::graph500(9, 8, 11);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let single = pool.install(|| generate(&p));
        let multi = generate(&p);
        assert_eq!(single, multi);
    }
}
