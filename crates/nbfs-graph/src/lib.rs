//! Graph substrate: Graph500-style synthetic graphs and their storage.
//!
//! The paper evaluates BFS on R-MAT graphs "the distribution of which is
//! scale-free" (Section II.A), generated per the Graph500 specification:
//! `SCALE` is log2 of the vertex count and the edge factor is 16. This
//! crate implements:
//!
//! * [`rmat`] — the Kronecker/R-MAT edge generator (A=0.57, B=0.19, C=0.19)
//!   with deterministic counter-based randomness and vertex-label
//!   scrambling;
//! * [`csr`] — compressed sparse row storage with parallel construction;
//! * [`compressed`] — delta-varint CSR (`u40`-packed byte offsets) that
//!   halves the graph footprint so scale 21–22 fits where 19 did;
//! * [`view`] — the [`GraphView`] trait both BFS engines traverse, so
//!   compressed and uncompressed storage share monomorphized kernels;
//! * [`builder`] — a fluent front door ([`builder::GraphBuilder`]);
//! * [`partition`] — the 1-D block distribution of rows across ranks used
//!   by the distributed BFS (each rank owns the adjacency of its vertex
//!   block, Fig. 1);
//! * [`validate`] — the Graph500 BFS-tree validation rules;
//! * [`stats`] — degree statistics used by tests and the figure printers;
//! * [`vid`] — the sanctioned vertex-id width conversions (the only place
//!   allowed to narrow a vertex id; see diagnostic NBFS005).

#![forbid(unsafe_code)]
// u64 offsets and counters are indexed into slices throughout; usize is
// 64 bits on every supported target (documented in DESIGN.md), so these
// casts cannot truncate. Narrowing *vertex ids* to u32/u16 is the risky
// direction, and that is gated by the nbfs-analysis NBFS005 rule instead.
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod edge;
pub mod io;
pub mod partition;
pub mod rmat;
pub mod stats;
pub mod validate;
pub mod vid;
pub mod view;

pub use builder::GraphBuilder;
pub use compressed::CompressedCsr;
pub use csr::Csr;
pub use edge::{Edge, EdgeList};
pub use partition::PartitionedGraph;
pub use view::GraphView;

/// Vertex identifier. Graphs up to scale 31 are supported (ids fit `u32`
/// internally; the API uses `usize` for ergonomics).
pub type VertexId = usize;

/// Sentinel parent value for unvisited vertices in BFS parent arrays.
pub const NO_PARENT: u32 = u32::MAX;
