//! Storage-generic read access to a graph.
//!
//! Both BFS engines accept any [`GraphView`] so they can traverse the
//! uncompressed [`Csr`](crate::Csr) and the delta-varint
//! [`CompressedCsr`](crate::CompressedCsr) through the same monomorphized
//! code paths — no `&dyn` indirection, so the hot kernels stay
//! allocation-free and branch-predictable (NBFS004). Engines consume the
//! view once at construction time to build their internal per-rank
//! structures; the per-level kernels never call back into it.

use crate::VertexId;

/// Read-only access to an undirected graph's adjacency structure.
///
/// Neighbour enumeration is push-style ([`Self::for_each_neighbour`])
/// rather than slice-returning so implementations that decode rows on the
/// fly (compressed storage) need no per-row buffer. Neighbours are always
/// visited in ascending id order — the kernels' deterministic "first set
/// neighbour wins" parent rule depends on it.
pub trait GraphView: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of *undirected* edges.
    fn num_edges(&self) -> usize;

    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Calls `f` with each neighbour of `v`, ascending.
    fn for_each_neighbour<F: FnMut(u32)>(&self, v: VertexId, f: F);

    /// Approximate in-memory footprint in bytes.
    fn size_bytes(&self) -> usize;

    /// Number of stored directed arcs (twice the undirected edge count).
    fn num_arcs(&self) -> usize {
        2 * self.num_edges()
    }

    /// Does the undirected edge `(u, v)` exist? Implementations with
    /// random-access rows should override with a binary search.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let w = crate::vid::to_stored(v);
        let mut found = false;
        self.for_each_neighbour(u, |x| found |= x == w);
        found
    }

    /// The highest-degree vertex (lowest id wins ties) — the canonical
    /// root choice of the experiments.
    fn max_degree_vertex(&self) -> VertexId {
        let mut best = 0usize;
        let mut best_deg = 0usize;
        for v in 0..self.num_vertices() {
            let d = self.degree(v);
            if d > best_deg {
                best = v;
                best_deg = d;
            }
        }
        best
    }

    /// Vertices of the connected component containing `root`, by a simple
    /// sequential BFS (tests and validators only — not a measured kernel).
    fn component_of(&self, root: VertexId) -> Vec<VertexId> {
        let mut seen = vec![false; self.num_vertices()];
        let mut queue = std::collections::VecDeque::from([root]);
        seen[root] = true;
        let mut out = vec![root];
        while let Some(u) = queue.pop_front() {
            let mut next = Vec::new();
            self.for_each_neighbour(u, |w| {
                let w = w as usize;
                if !seen[w] {
                    seen[w] = true;
                    next.push(w);
                }
            });
            out.extend_from_slice(&next);
            queue.extend(next);
        }
        out
    }

    /// Number of undirected edges with both endpoints inside the component
    /// of `root` — the Graph500 "traversed edges" numerator for TEPS.
    fn component_edges(&self, root: VertexId) -> usize {
        let arcs: usize = self
            .component_of(root)
            .iter()
            .map(|&v| self.degree(v))
            .sum();
        arcs / 2
    }
}

impl GraphView for crate::Csr {
    fn num_vertices(&self) -> usize {
        Self::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Self::num_edges(self)
    }

    fn num_arcs(&self) -> usize {
        Self::num_arcs(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        Self::degree(self, v)
    }

    fn for_each_neighbour<F: FnMut(u32)>(&self, v: VertexId, mut f: F) {
        for &w in self.neighbours(v) {
            f(w);
        }
    }

    fn size_bytes(&self) -> usize {
        Self::size_bytes(self)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        Self::has_edge(self, u, v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn csr_view_agrees_with_inherent_methods() {
        let g = GraphBuilder::rmat(9, 8).seed(4).build();
        assert_eq!(GraphView::num_vertices(&g), g.num_vertices());
        assert_eq!(GraphView::num_edges(&g), g.num_edges());
        assert_eq!(GraphView::num_arcs(&g), g.num_arcs());
        for v in 0..g.num_vertices() {
            assert_eq!(GraphView::degree(&g, v), g.degree(v));
            let mut ns = Vec::new();
            g.for_each_neighbour(v, |w| ns.push(w));
            assert_eq!(ns, g.neighbours(v));
        }
        let root = GraphView::max_degree_vertex(&g);
        assert_eq!(
            root,
            (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap()
        );
        let mut trait_comp = GraphView::component_of(&g, root);
        let mut inherent_comp = g.component_of(root);
        trait_comp.sort_unstable();
        inherent_comp.sort_unstable();
        assert_eq!(trait_comp, inherent_comp);
        assert_eq!(
            GraphView::component_edges(&g, root),
            g.component_edges(root)
        );
    }
}
