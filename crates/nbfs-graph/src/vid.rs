//! The sanctioned vertex-id width conversions.
//!
//! Vertex ids travel as `usize` through the public API but are stored as
//! `u32` in parent arrays, frontier queues and wire chunks (graphs up to
//! scale 31, matching the paper's largest runs). That narrowing is the
//! single most dangerous cast in the codebase — a silently truncated id
//! corrupts the BFS tree only at scales large enough that nobody is
//! looking. The nbfs-analysis linter therefore bans `as u32` on vertex
//! expressions everywhere (diagnostic NBFS005) *except* in this module:
//! all narrowing funnels through [`to_stored`], which checks the range in
//! debug builds and documents the invariant in one place.

use crate::VertexId;

/// Narrows a vertex id to its stored `u32` form.
///
/// The graph substrate never constructs more than `u32::MAX` vertices
/// (scale ≤ 31 is enforced by the builder), so the narrowing is lossless
/// for every id that names a real vertex. Debug builds verify it.
#[inline]
pub fn to_stored(v: VertexId) -> u32 {
    debug_assert!(
        u32::try_from(v).is_ok(),
        "vertex id {v} exceeds the stored u32 width"
    );
    v as u32
}

/// Widens a stored `u32` vertex id back to the API width. Total.
#[inline]
pub fn from_stored(s: u32) -> VertexId {
    s as VertexId
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for v in [0usize, 1, 63, 64, 1 << 20, u32::MAX as usize] {
            assert_eq!(from_stored(to_stored(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the stored u32 width")]
    #[cfg(debug_assertions)]
    fn overflow_is_caught_in_debug() {
        let _ = to_stored(u32::MAX as usize + 1);
    }
}
