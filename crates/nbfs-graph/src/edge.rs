//! Edge lists — the raw output of the generator.

use serde::{Deserialize, Serialize};

use crate::VertexId;

/// An undirected edge between two vertices (stored as an ordered pair;
/// direction carries no meaning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
}

impl Edge {
    /// Constructs an edge.
    pub fn new(u: VertexId, v: VertexId) -> Self {
        Self {
            u: u32::try_from(u).expect("vertex id exceeds u32"),
            v: u32::try_from(v).expect("vertex id exceeds u32"),
        }
    }

    /// Is this a self loop?
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// The edge with endpoints ordered `min, max` (canonical form for
    /// undirected dedup).
    pub fn canonical(&self) -> Edge {
        Edge {
            u: self.u.min(self.v),
            v: self.u.max(self.v),
        }
    }
}

/// A list of undirected edges over `num_vertices` vertices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    /// Number of vertices in the id space.
    pub num_vertices: usize,
    /// The edges (may contain duplicates and self loops straight out of the
    /// generator, exactly like the Graph500 edge file).
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an edge list.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        Self {
            num_vertices,
            edges,
        }
    }

    /// Number of raw (possibly duplicated) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns a cleaned copy: self loops dropped, duplicates (in either
    /// orientation) collapsed. This mirrors what the Graph500 reference
    /// kernel 1 does while building its data structure.
    pub fn deduplicated(&self) -> EdgeList {
        let mut canon: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .map(Edge::canonical)
            .collect();
        canon.sort_unstable_by_key(|e| (e.u, e.v));
        canon.dedup();
        EdgeList::new(self.num_vertices, canon)
    }

    /// Validates that every endpoint is within range.
    pub fn check_bounds(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.u as usize >= self.num_vertices || e.v as usize >= self.num_vertices {
                return Err(format!(
                    "edge {i} ({}, {}) out of range {}",
                    e.u, e.v, self.num_vertices
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(Edge::new(5, 2).canonical(), Edge::new(2, 5));
        assert_eq!(Edge::new(2, 5).canonical(), Edge::new(2, 5));
    }

    #[test]
    fn dedup_removes_loops_and_doubles() {
        let el = EdgeList::new(
            10,
            vec![
                Edge::new(1, 2),
                Edge::new(2, 1), // same undirected edge
                Edge::new(3, 3), // self loop
                Edge::new(4, 5),
                Edge::new(4, 5), // exact duplicate
            ],
        );
        let d = el.deduplicated();
        assert_eq!(d.edges, vec![Edge::new(1, 2), Edge::new(4, 5)]);
    }

    #[test]
    fn bounds_check() {
        let ok = EdgeList::new(4, vec![Edge::new(0, 3)]);
        assert!(ok.check_bounds().is_ok());
        let bad = EdgeList::new(3, vec![Edge::new(0, 3)]);
        assert!(bad.check_bounds().is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversize_vertex_id_rejected() {
        Edge::new(0, 1usize << 40);
    }

    #[test]
    fn len_and_empty() {
        assert!(EdgeList::new(1, vec![]).is_empty());
        assert_eq!(EdgeList::new(4, vec![Edge::new(0, 1)]).len(), 1);
    }
}
