//! The traversal-direction vocabulary shared by engines and traces.
//!
//! Only the [`Direction`] enum lives here; the α/β switch heuristic
//! (`SwitchPolicy`) stays in `nbfs-core`, which re-exports this type so
//! existing import paths keep working.

use serde::{Deserialize, Serialize};

/// Traversal direction of one BFS level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Explore from the frontier outward ("for each vertex in the current
    /// frontier, its adjacent vertices are checked").
    TopDown,
    /// Search from unvisited vertices backward ("for each unvisited vertex
    /// ... it is put into the next frontier only if at least one of its
    /// adjacent vertices is in the current frontier").
    BottomUp,
}

impl Direction {
    /// Short label used by reports and the `nbfs trace` table.
    pub fn label(self) -> &'static str {
        match self {
            Direction::TopDown => "top-down",
            Direction::BottomUp => "bottom-up",
        }
    }
}
