//! The recording facade the engines thread through a run.
//!
//! A [`Tracer`] is either off (`inner: None`) or holds one control-plane
//! ring plus one ring per rank. The engines drive simulated ranks from a
//! single thread (rayon parallelism lives *inside* kernels, which do not
//! record), so no synchronization is needed: recording is an `Option`
//! check and a ring store.

use crate::config::TraceConfig;
use crate::event::TraceEvent;
use crate::report::{RunMeta, TraceReport};
use crate::ring::EventRing;

struct Inner {
    control: EventRing,
    ranks: Vec<EventRing>,
}

/// Run-event recorder. Construct with [`Tracer::off`] (free) or
/// [`Tracer::new`]; feed with [`Tracer::record`] / [`Tracer::record_rank`];
/// merge with [`Tracer::finish`].
pub struct Tracer {
    inner: Option<Inner>,
}

impl Tracer {
    /// A disabled tracer: every record call reduces to one discriminant
    /// check. This is the `TraceConfig::Off` fast path.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer for `world` ranks per `config`
    /// ([`TraceConfig::Off`] yields a disabled tracer).
    pub fn new(config: TraceConfig, world: usize) -> Tracer {
        if !config.is_enabled() {
            return Tracer::off();
        }
        let cap = config.ring_capacity();
        Tracer {
            inner: Some(Inner {
                control: EventRing::with_capacity(cap),
                ranks: (0..world).map(|_| EventRing::with_capacity(cap)).collect(),
            }),
        }
    }

    /// Whether events are being kept. Callers may use this to skip
    /// building events whose inputs are not otherwise needed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a control-plane event (level spans, collectives, decisions).
    // nbfs-analysis: hot-path
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if let Some(inner) = self.inner.as_mut() {
            inner.control.push(ev);
        }
    }

    /// Records a per-rank event. Out-of-range ranks are ignored rather
    /// than panicking (the engine owns the world size it was built with).
    #[inline]
    pub fn record_rank(&mut self, rank: usize, ev: TraceEvent) {
        if let Some(inner) = self.inner.as_mut() {
            if let Some(ring) = inner.ranks.get_mut(rank) {
                ring.push(ev);
            }
        }
    }
    // nbfs-analysis: end-hot-path

    /// Merges the rings into a [`TraceReport`]. A disabled tracer yields
    /// [`TraceReport::empty`].
    pub fn finish(self, meta: RunMeta) -> TraceReport {
        let mut report = TraceReport::empty(meta);
        let Some(inner) = self.inner else {
            return report;
        };
        report.dropped_events =
            inner.control.dropped() + inner.ranks.iter().map(EventRing::dropped).sum::<u64>();

        // Pass 1: Level events define the committed levels, in order.
        for ev in inner.control.iter_in_order() {
            if let TraceEvent::Level {
                level,
                direction,
                discovered,
                comp,
                comm,
                stall,
                switch,
                detail,
                wall_comp_secs,
            } = *ev
            {
                report.levels.push(crate::report::LevelReport {
                    level,
                    direction,
                    discovered,
                    comp,
                    comm,
                    stall,
                    switch,
                    detail,
                    wall_comp_secs,
                    collectives: Vec::new(),
                    ranks: Vec::new(),
                });
            }
        }

        // Pass 2: attach collectives (by level) and collect decisions.
        for ev in inner.control.iter_in_order() {
            match *ev {
                TraceEvent::Collective {
                    level,
                    kind,
                    cost,
                    stats,
                } => {
                    let rec = crate::report::CollectiveRecord {
                        level,
                        kind,
                        cost,
                        stats,
                    };
                    match report.levels.iter_mut().find(|l| l.level == level) {
                        Some(lv) => lv.collectives.push(rec),
                        None => report.post_collectives.push(rec),
                    }
                }
                TraceEvent::Decision {
                    level,
                    prev,
                    chosen,
                    m_f,
                    m_u,
                    n_f,
                    n,
                } => report.decisions.push(crate::report::DecisionRecord {
                    level,
                    prev,
                    chosen,
                    m_f,
                    m_u,
                    n_f,
                    n,
                }),
                TraceEvent::Fault(record) => report.faults.push(record),
                TraceEvent::Query(record) => report.queries.push(record),
                _ => {}
            }
        }

        // Pass 3: attach per-rank counters (rings are already in rank
        // order, and each ring is in level order). Faults recorded on rank
        // rings land after the control-plane ones, still deterministically.
        for ring in &inner.ranks {
            for ev in ring.iter_in_order() {
                match *ev {
                    TraceEvent::RankLevel {
                        level,
                        rank,
                        discovered,
                        edges_scanned,
                        summary_probes,
                        inqueue_probes,
                        write_bytes,
                        comp,
                    } => {
                        if let Some(lv) = report.levels.iter_mut().find(|l| l.level == level) {
                            lv.ranks.push(crate::report::RankLevelRecord {
                                rank,
                                discovered,
                                edges_scanned,
                                summary_probes,
                                inqueue_probes,
                                write_bytes,
                                comp,
                            });
                        }
                    }
                    TraceEvent::Fault(record) => report.faults.push(record),
                    _ => {}
                }
            }
        }
        report
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::cost::CommCost;
    use crate::direction::Direction;
    use crate::event::{CollectiveKind, CollectiveStats};
    use nbfs_util::SimTime;

    fn meta() -> RunMeta {
        RunMeta {
            world: 2,
            nodes: 2,
            ppn: 1,
            opt_label: "Original".to_string(),
            root: 0,
        }
    }

    fn level_event(level: usize) -> TraceEvent {
        TraceEvent::Level {
            level,
            direction: Direction::TopDown,
            discovered: 5,
            comp: SimTime::from_millis(1.0),
            comm: SimTime::from_millis(0.5),
            stall: SimTime::ZERO,
            switch: SimTime::ZERO,
            detail: CommCost::ZERO,
            wall_comp_secs: 0.0,
        }
    }

    #[test]
    fn off_tracer_records_nothing_and_is_cheap() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.record(level_event(0));
        t.record_rank(0, level_event(0));
        let r = t.finish(meta());
        assert!(r.levels.is_empty());
        assert_eq!(r.dropped_events, 0);
    }

    #[test]
    fn off_config_yields_disabled_tracer() {
        assert!(!Tracer::new(TraceConfig::Off, 4).enabled());
        assert!(Tracer::new(TraceConfig::Standard, 4).enabled());
    }

    #[test]
    fn merge_groups_by_level() {
        let mut t = Tracer::new(TraceConfig::Ring(64), 2);
        t.record(TraceEvent::Decision {
            level: 0,
            prev: Direction::TopDown,
            chosen: Direction::TopDown,
            m_f: 1,
            m_u: 100,
            n_f: 1,
            n: 64,
        });
        t.record(TraceEvent::Collective {
            level: 0,
            kind: CollectiveKind::Allreduce,
            cost: CommCost::ZERO,
            stats: CollectiveStats::ZERO,
        });
        for rank in 0..2usize {
            t.record_rank(
                rank,
                TraceEvent::RankLevel {
                    level: 0,
                    rank,
                    discovered: 2,
                    edges_scanned: 8,
                    summary_probes: 1,
                    inqueue_probes: 1,
                    write_bytes: 16,
                    comp: SimTime::from_millis(1.0),
                },
            );
        }
        t.record(level_event(0));
        // Terminal allreduce: level 1 never commits.
        t.record(TraceEvent::Collective {
            level: 1,
            kind: CollectiveKind::Allreduce,
            cost: CommCost::ZERO,
            stats: CollectiveStats::ZERO,
        });
        let r = t.finish(meta());
        assert_eq!(r.levels.len(), 1);
        assert_eq!(r.decisions.len(), 1);
        assert_eq!(r.levels[0].collectives.len(), 1);
        assert_eq!(r.levels[0].ranks.len(), 2);
        assert_eq!(r.levels[0].ranks[1].rank, 1);
        assert_eq!(r.post_collectives.len(), 1);
        assert_eq!(r.post_collectives[0].level, 1);
        assert_eq!(r.dropped_events, 0);
    }

    #[test]
    fn fault_events_merge_control_first_then_ranks() {
        use crate::event::{FaultKind, FaultOp, FaultRecord};
        let rec = |src: usize| FaultRecord {
            level: 0,
            kind: FaultKind::Drop,
            op: FaultOp::P2p,
            src,
            dst: 0,
            tag: 1,
            attempts: 2,
            recovered: true,
            penalty: SimTime::ZERO,
        };
        let mut t = Tracer::new(TraceConfig::Ring(8), 2);
        t.record_rank(1, TraceEvent::Fault(rec(11)));
        t.record(TraceEvent::Fault(rec(99)));
        t.record_rank(0, TraceEvent::Fault(rec(10)));
        t.record(level_event(0));
        let r = t.finish(meta());
        let srcs: Vec<usize> = r.faults.iter().map(|f| f.src).collect();
        assert_eq!(srcs, vec![99, 10, 11]);
    }

    #[test]
    fn query_events_merge_in_recording_order() {
        use crate::event::QueryRecord;
        let mut t = Tracer::new(TraceConfig::Ring(16), 1);
        for lane in 0..4u32 {
            t.record(TraceEvent::Query(QueryRecord {
                wave: 0,
                lane,
                batch: 4,
                root: u64::from(lane) * 10,
                levels: 3,
                visited: 100,
                edges_scanned: 999,
                wall_secs: 0.0,
            }));
        }
        let r = t.finish(meta());
        assert_eq!(r.queries.len(), 4);
        let lanes: Vec<u32> = r.queries.iter().map(|q| q.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
        assert_eq!(r.queries[3].root, 30);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let mut t = Tracer::new(TraceConfig::Ring(8), 1);
        t.record_rank(5, level_event(0));
        let r = t.finish(meta());
        assert!(r.levels.is_empty());
    }

    #[test]
    fn dropped_events_are_summed() {
        let mut t = Tracer::new(TraceConfig::Ring(2), 1);
        for i in 0..5 {
            t.record(level_event(i));
        }
        let r = t.finish(meta());
        assert_eq!(r.dropped_events, 3);
        assert_eq!(r.levels.len(), 2);
    }
}
