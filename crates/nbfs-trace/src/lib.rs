//! Structured run-event observability for the `numa-bfs` workspace.
//!
//! The paper's argument is carried by per-phase breakdowns — Fig. 11's
//! TD-comp / BU-comp / BU-comm / stall split and Figs. 12–14's
//! communication proportions. This crate makes that instrument a
//! first-class subsystem instead of a bench-only artifact:
//!
//! * [`TraceEvent`] — the event taxonomy (per-level spans, per-rank
//!   counters, collective cost samples, switch decisions),
//! * [`EventRing`] — a pre-sized ring buffer recorded into without heap
//!   allocation on the hot path,
//! * [`Tracer`] — the recording facade the engines thread through a run;
//!   [`Tracer::off`] compiles to a `None` check and nothing else,
//! * [`TraceReport`] — the merged, serializable output; the retained
//!   [`RunProfile`] is a projection of it ([`TraceReport::run_profile`]),
//! * [`RunProfile`] / [`LevelProfile`] / [`Phase`] / [`CommCost`] /
//!   [`Direction`] — the breakdown vocabulary, moved here from the three
//!   ad-hoc profiling structs this crate replaces.

#![forbid(unsafe_code)]
// u64 counters are folded into usize indices and f64 seconds throughout;
// usize is 64 bits on every supported target (documented in DESIGN.md).
#![allow(clippy::cast_possible_truncation)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod direction;
pub mod event;
pub mod phase;
pub mod profile;
pub mod report;
pub mod ring;
pub mod tracer;

pub use config::TraceConfig;
pub use cost::CommCost;
pub use direction::Direction;
pub use event::{
    CollectiveKind, CollectiveStats, FaultKind, FaultOp, FaultRecord, QueryRecord, TraceEvent,
};
pub use phase::Phase;
pub use profile::{LevelProfile, RunProfile};
pub use report::{
    CollectiveRecord, DecisionRecord, LevelReport, RankLevelRecord, RunMeta, TraceReport,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use ring::EventRing;
pub use tracer::Tracer;
