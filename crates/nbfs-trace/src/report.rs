//! The merged, serializable output of a traced run.
//!
//! [`TraceReport`] is the superset the three sinks share: the in-memory
//! structure itself, the versioned JSON exporter
//! ([`TraceReport::to_json`] / [`TraceReport::from_json`], guarded by
//! [`SCHEMA_VERSION`] like `BENCH_BFS.json`), and the `nbfs trace` CLI
//! table, which formats it. The retained [`RunProfile`] is a projection:
//! [`TraceReport::run_profile`] folds the per-level spans in level order
//! with the same `f64` additions the engine used to perform itself, so the
//! phase totals match the legacy accounting bit-for-bit.

use serde::{Deserialize, Serialize};

use nbfs_util::{NbfsError, SimTime};

use crate::cost::CommCost;
use crate::direction::Direction;
use crate::event::{CollectiveKind, CollectiveStats, FaultRecord, QueryRecord};
use crate::profile::{LevelProfile, RunProfile};

/// Version stamp of the JSON layout. Bump when renaming or removing fields.
///
/// v4 added the `queries` array (per-lane records of batched multi-source
/// waves); v3 and older reports deserialize with it empty.
/// v3 added `CollectiveStats::raw_bytes` (codec-aware compression
/// accounting); v2 reports deserialize with `raw_bytes = wire_bytes`.
/// v2 added the `faults` array (deterministic fault-injection records);
/// v1 reports deserialize with it empty ([`MIN_SCHEMA_VERSION`]).
pub const SCHEMA_VERSION: u32 = 4;

/// Oldest schema version [`TraceReport::from_json`] still imports.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Identity of a traced run, supplied by the engine at merge time.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMeta {
    /// MPI world size (ranks).
    pub world: usize,
    /// Nodes in the machine.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Label of the optimization level executed.
    pub opt_label: String,
    /// BFS root vertex.
    pub root: u64,
}

/// One collective cost sample attached to a level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectiveRecord {
    /// Level the collective ran in.
    pub level: usize,
    /// Which operation.
    pub kind: CollectiveKind,
    /// Step-wise simulated cost.
    pub cost: CommCost,
    /// Byte/round/flow counters from the cost model.
    pub stats: CollectiveStats,
}

/// One rank's computation counters for one level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankLevelRecord {
    /// Rank id.
    pub rank: usize,
    /// Vertices this rank discovered.
    pub discovered: u64,
    /// Edges scanned (CSR adjacency entries touched).
    pub edges_scanned: u64,
    /// Summary-bitmap word probes issued.
    pub summary_probes: u64,
    /// `in_queue` bitmap probes issued.
    pub inqueue_probes: u64,
    /// Bytes written to queues / parent entries.
    pub write_bytes: u64,
    /// Simulated computation time of this rank.
    pub comp: SimTime,
}

/// One α/β switch decision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Level the decision applies to.
    pub level: usize,
    /// Direction of the previous level.
    pub prev: Direction,
    /// Direction chosen.
    pub chosen: Direction,
    /// Edges incident to the current frontier.
    pub m_f: u64,
    /// Edges incident to still-unvisited vertices.
    pub m_u: u64,
    /// Vertices in the current frontier.
    pub n_f: u64,
    /// Total vertices.
    pub n: u64,
}

/// The per-level span of a committed BFS level plus everything recorded
/// while it ran.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelReport {
    /// BFS level index.
    pub level: usize,
    /// Direction executed.
    pub direction: Direction,
    /// Vertices discovered across all ranks.
    pub discovered: u64,
    /// Mean per-rank computation time.
    pub comp: SimTime,
    /// Communication time (collectives plus control allreduce).
    pub comm: SimTime,
    /// Barrier skew absorbed at the end of the level.
    pub stall: SimTime,
    /// Data-structure conversion time charged to this level.
    pub switch: SimTime,
    /// Step split of the bottom-up collectives (zero for top-down).
    pub detail: CommCost,
    /// Host wall-clock seconds spent in this level's kernels (zero under
    /// `NoClock`).
    pub wall_comp_secs: f64,
    /// Collective cost samples, in execution order.
    pub collectives: Vec<CollectiveRecord>,
    /// Per-rank computation counters, in rank order.
    pub ranks: Vec<RankLevelRecord>,
}

impl LevelReport {
    /// Total simulated time of the level.
    pub fn total(&self) -> SimTime {
        self.comp + self.comm + self.stall + self.switch
    }

    /// Maximum per-rank computation time minus the mean — the skew the
    /// barrier absorbed, reconstructed from the rank records.
    pub fn rank_skew(&self) -> SimTime {
        let max = self
            .ranks
            .iter()
            .map(|r| r.comp)
            .fold(SimTime::ZERO, SimTime::max);
        if max > self.comp {
            max - self.comp
        } else {
            SimTime::ZERO
        }
    }
}

/// The merged output of a traced run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Run identity.
    pub meta: RunMeta,
    /// Committed levels, in execution order.
    pub levels: Vec<LevelReport>,
    /// Switch decisions, in execution order.
    pub decisions: Vec<DecisionRecord>,
    /// Collectives that ran outside any committed level (the terminal
    /// allreduce that detected the empty frontier).
    pub post_collectives: Vec<CollectiveRecord>,
    /// Events lost to ring overwrites (0 unless a ring was undersized).
    pub dropped_events: u64,
    /// Injected faults and how they resolved, in deterministic order
    /// (control ring first, then rank rings in rank order). Empty for
    /// fault-free runs and for imported v1 reports.
    #[serde(default)]
    pub faults: Vec<FaultRecord>,
    /// Per-lane records of batched multi-source waves, in recording order
    /// (wave order, then lane order within a wave). Empty for
    /// single-source runs and for imported pre-v4 reports.
    #[serde(default)]
    pub queries: Vec<QueryRecord>,
}

impl TraceReport {
    /// An empty report carrying only identity — what a disabled tracer
    /// produces.
    pub fn empty(meta: RunMeta) -> Self {
        TraceReport {
            schema_version: SCHEMA_VERSION,
            meta,
            levels: Vec::new(),
            decisions: Vec::new(),
            post_collectives: Vec::new(),
            dropped_events: 0,
            faults: Vec::new(),
            queries: Vec::new(),
        }
    }

    /// Number of faults that were recovered (retried to completion).
    pub fn recovered_faults(&self) -> usize {
        self.faults.iter().filter(|f| f.recovered).count()
    }

    /// Total simulated penalty charged by the fault layer (retries,
    /// backoff, delays, stalls).
    pub fn fault_penalty(&self) -> SimTime {
        self.faults.iter().map(|f| f.penalty).sum()
    }

    /// Projects the legacy [`RunProfile`] out of the per-level spans.
    ///
    /// Folds levels in execution order with one addition per field per
    /// level — the same sequence of `f64` additions the engine applies to
    /// its own `RunProfile` — so every phase total matches the engine's
    /// accounting bit-for-bit (IEEE 754 addition is deterministic).
    pub fn run_profile(&self) -> RunProfile {
        let mut p = RunProfile::default();
        for lv in &self.levels {
            match lv.direction {
                Direction::TopDown => {
                    p.td_comp += lv.comp;
                    p.td_comm += lv.comm;
                }
                Direction::BottomUp => {
                    p.bu_comp += lv.comp;
                    p.bu_comm += lv.comm;
                    p.bu_comm_detail += lv.detail;
                    p.bu_comm_phases += 1;
                }
            }
            p.switch += lv.switch;
            p.stall += lv.stall;
            p.levels.push(LevelProfile {
                direction: lv.direction,
                discovered: lv.discovered,
                comp: lv.comp,
                comm: lv.comm,
                stall: lv.stall,
            });
        }
        p
    }

    /// Total simulated run time across all levels.
    pub fn total(&self) -> SimTime {
        self.levels
            .iter()
            .map(LevelReport::total)
            .fold(SimTime::ZERO, |a, b| a + b)
    }

    /// Serializes to pretty-printed, versioned JSON.
    pub fn to_json(&self) -> nbfs_util::Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| NbfsError::Serde(e.to_string()))
    }

    /// Parses a report exported by [`TraceReport::to_json`].
    ///
    /// Accepts versions [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`]: a v1
    /// report (pre-fault-layer) imports with an empty `faults` array, a v2
    /// report (pre-codec) with `raw_bytes = wire_bytes` on every
    /// collective record (uncompressed exchanges move their raw volume), a
    /// v3 report (pre-multi-query) with an empty `queries` array; future
    /// versions are refused, not misread.
    pub fn from_json(text: &str) -> nbfs_util::Result<TraceReport> {
        let report: TraceReport =
            serde_json::from_str(text).map_err(|e| NbfsError::Serde(e.to_string()))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&report.schema_version) {
            return Err(NbfsError::invalid_data(format!(
                "trace schema version {} (this build reads {}..={})",
                report.schema_version, MIN_SCHEMA_VERSION, SCHEMA_VERSION
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn level(level: usize, direction: Direction, ms: f64) -> LevelReport {
        LevelReport {
            level,
            direction,
            discovered: 10 * level as u64,
            comp: SimTime::from_millis(ms),
            comm: SimTime::from_millis(ms / 2.0),
            stall: SimTime::from_millis(ms / 10.0),
            switch: SimTime::ZERO,
            detail: CommCost::inter_only(SimTime::from_millis(ms / 2.0)),
            wall_comp_secs: 0.0,
            collectives: Vec::new(),
            ranks: Vec::new(),
        }
    }

    fn sample() -> TraceReport {
        let mut r = TraceReport::empty(RunMeta {
            world: 8,
            nodes: 4,
            ppn: 2,
            opt_label: "ShareAll".to_string(),
            root: 42,
        });
        r.levels.push(level(0, Direction::TopDown, 1.0));
        r.levels.push(level(1, Direction::BottomUp, 4.0));
        r.levels.push(level(2, Direction::BottomUp, 2.0));
        r.levels.push(level(3, Direction::TopDown, 0.5));
        r
    }

    #[test]
    fn projection_folds_levels_in_order() {
        let r = sample();
        let p = r.run_profile();
        assert_eq!(p.levels.len(), 4);
        assert_eq!(p.bu_comm_phases, 2);
        let td_comp = SimTime::from_millis(1.0) + SimTime::from_millis(0.5);
        assert_eq!(p.td_comp, td_comp);
        let bu_comm = SimTime::from_millis(2.0) + SimTime::from_millis(1.0);
        assert_eq!(p.bu_comm, bu_comm);
        // Projection total equals the span total (same additions).
        assert!((p.total().as_secs() - r.total().as_secs()).abs() < 1e-15);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample();
        let text = r.to_json().unwrap();
        let back = TraceReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn foreign_schema_versions_are_rejected() {
        let mut r = sample();
        r.schema_version = SCHEMA_VERSION + 1;
        let text = r.to_json().unwrap();
        let err = TraceReport::from_json(&text).unwrap_err();
        assert!(matches!(err, NbfsError::InvalidData(_)));
    }

    #[test]
    fn v1_reports_import_with_empty_faults() {
        let mut r = sample();
        r.schema_version = 1;
        let text = r.to_json().unwrap();
        // A v1 exporter never wrote a `faults` key at all.
        let v1 = text.replace(",\n  \"faults\": []", "");
        assert!(!v1.contains("faults"), "{v1}");
        let back = TraceReport::from_json(&v1).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(back.faults.is_empty());
        assert_eq!(back.levels, r.levels);
    }

    #[test]
    fn v2_reports_import_with_raw_equal_wire() {
        let mut r = sample();
        r.schema_version = 2;
        r.levels[0].collectives.push(CollectiveRecord {
            level: 0,
            kind: CollectiveKind::Allgatherv,
            cost: CommCost::ZERO,
            stats: CollectiveStats {
                rounds: 3,
                flows: 6,
                wire_bytes: 4096,
                shm_bytes: 512,
                raw_bytes: 4096,
            },
        });
        let text = r.to_json().unwrap();
        // A v2 exporter never wrote a `raw_bytes` key at all: splice the
        // field out from its preceding comma to the end of its line.
        let key = text.find("\"raw_bytes\"").unwrap();
        let comma = text[..key].rfind(',').unwrap();
        let line_end = key + text[key..].find('\n').unwrap();
        let v2 = format!("{}{}", &text[..comma], &text[line_end..]);
        assert!(!v2.contains("raw_bytes"), "{v2}");
        let back = TraceReport::from_json(&v2).unwrap();
        assert_eq!(back.schema_version, 2);
        let stats = back.levels[0].collectives[0].stats;
        assert_eq!(stats.raw_bytes, stats.wire_bytes);
        assert_eq!(back.levels, r.levels);
    }

    #[test]
    fn v3_reports_import_with_empty_queries() {
        let mut r = sample();
        r.schema_version = 3;
        let text = r.to_json().unwrap();
        // A v3 exporter never wrote a `queries` key at all.
        let v3 = text.replace(",\n  \"queries\": []", "");
        assert!(!v3.contains("queries"), "{v3}");
        let back = TraceReport::from_json(&v3).unwrap();
        assert_eq!(back.schema_version, 3);
        assert!(back.queries.is_empty());
        assert_eq!(back.levels, r.levels);
    }

    #[test]
    fn query_records_survive_a_round_trip() {
        let mut r = sample();
        for lane in 0..3u32 {
            r.queries.push(QueryRecord {
                wave: 2,
                lane,
                batch: 3,
                root: 100 + u64::from(lane),
                levels: 5,
                visited: 4000,
                edges_scanned: 123_456,
                wall_secs: 0.25,
            });
        }
        let back = TraceReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back.queries, r.queries);
        assert_eq!(back.queries[1].lane, 1);
        assert_eq!(back.queries[2].root, 102);
    }

    #[test]
    fn fault_summaries_fold_records() {
        use crate::event::{FaultKind, FaultOp};
        let mut r = sample();
        for (kind, recovered, us) in [
            (FaultKind::Drop, true, 10.0),
            (FaultKind::Crash, false, 0.0),
            (FaultKind::Delay, true, 50.0),
        ] {
            r.faults.push(FaultRecord {
                level: 1,
                kind,
                op: FaultOp::P2p,
                src: 0,
                dst: 1,
                tag: 9,
                attempts: 1,
                recovered,
                penalty: SimTime::from_micros(us),
            });
        }
        assert_eq!(r.recovered_faults(), 2);
        assert!((r.fault_penalty().as_micros() - 60.0).abs() < 1e-9);
        // And the records survive a round trip.
        let back = TraceReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back.faults, r.faults);
    }

    #[test]
    fn rank_skew_reconstructs_stall() {
        let mut lv = level(0, Direction::BottomUp, 2.0);
        for (rank, ms) in [(0usize, 1.0), (1, 3.0)] {
            lv.ranks.push(RankLevelRecord {
                rank,
                discovered: 1,
                edges_scanned: 10,
                summary_probes: 4,
                inqueue_probes: 2,
                write_bytes: 8,
                comp: SimTime::from_millis(ms),
            });
        }
        // mean comp is 2ms, max is 3ms → skew 1ms.
        assert!((lv.rank_skew().as_millis() - 1.0).abs() < 1e-9);
    }
}
