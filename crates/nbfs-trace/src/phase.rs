//! The breakdown slice names of the paper's Fig. 11.

use serde::{Deserialize, Serialize};

/// The breakdown slice names of Fig. 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Top-down computation.
    TdComp,
    /// Bottom-up computation.
    BuComp,
    /// Top-down communication (the alltoallv exchanges).
    TdComm,
    /// Bottom-up communication (the two allgathers of Fig. 1).
    BuComm,
    /// Data-structure conversion at direction switches.
    Switch,
    /// Idle time from load imbalance at phase barriers.
    Stall,
}

impl Phase {
    /// All slices in presentation order.
    pub const ALL: [Phase; 6] = [
        Phase::TdComp,
        Phase::BuComp,
        Phase::TdComm,
        Phase::BuComm,
        Phase::Switch,
        Phase::Stall,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::TdComp => "top-down comp",
            Phase::BuComp => "bottom-up comp",
            Phase::TdComm => "top-down comm",
            Phase::BuComm => "bottom-up comm",
            Phase::Switch => "switch",
            Phase::Stall => "stall",
        }
    }
}
