//! The run-event taxonomy.
//!
//! Events are small `Copy` values so that recording one into a pre-sized
//! [`crate::EventRing`] is a store, not an allocation. [`TraceEvent`] is the
//! in-ring representation and is deliberately **not** serialized; the merged
//! [`crate::TraceReport`] is the exchange format.

use serde::{Deserialize, Serialize};

use nbfs_util::SimTime;

use crate::cost::CommCost;
use crate::direction::Direction;

/// Which collective operation a cost sample came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// The frontier-word allgather of the bottom-up exchange (Fig. 1).
    AllgatherWords,
    /// The `in_queue_summary` allgather that follows it.
    AllgatherSummary,
    /// The variable-length frontier-list allgather of sparse top-down.
    Allgatherv,
    /// The pairwise alltoallv exchange of the 1-D alltoallv strategy.
    Alltoallv,
    /// A scalar allreduce (frontier size / termination vote).
    Allreduce,
    /// A broadcast.
    Broadcast,
    /// A barrier.
    Barrier,
    /// The row-ring frontier expansion of the 2-D engine.
    Expand2d,
}

impl CollectiveKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveKind::AllgatherWords => "allgather-words",
            CollectiveKind::AllgatherSummary => "allgather-summary",
            CollectiveKind::Allgatherv => "allgatherv",
            CollectiveKind::Alltoallv => "alltoallv",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Expand2d => "expand-2d",
        }
    }
}

/// What an injected fault did to a transfer.
///
/// The taxonomy of the deterministic fault-injection layer (see
/// `nbfs-comm::fault`): the first four perturb a single message or
/// collective edge, the last two act on a whole rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The transfer is lost and must be retried (bounded budget).
    Drop,
    /// The transfer arrives late; a fixed penalty is charged.
    Delay,
    /// The transfer arrives twice; the receiver discards the copy.
    Duplicate,
    /// The transfer is held back one slot and overtaken by the next one.
    Reorder,
    /// A rank stalls for a fixed penalty before progressing.
    Stall,
    /// A rank dies; the world degrades to a structured error, never a hang.
    Crash,
}

impl FaultKind {
    /// Every kind, for matrix-style harnesses.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Stall,
        FaultKind::Crash,
    ];

    /// Short label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
        }
    }
}

/// Which operation a fault hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOp {
    /// A point-to-point `RankCtx::send` in the threaded runtime.
    P2p,
    /// An edge of a simulated collective.
    Collective(CollectiveKind),
    /// A whole-rank fate (stall / crash), not tied to a transfer.
    Rank,
}

impl FaultOp {
    /// Short label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultOp::P2p => "p2p",
            FaultOp::Collective(kind) => kind.label(),
            FaultOp::Rank => "rank",
        }
    }
}

/// One injected fault and how it resolved. `Copy`, so it doubles as the
/// in-ring payload of [`TraceEvent::Fault`] and the serialized record of
/// `TraceReport::faults`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// BFS level the fault fired in (0 for the level-less p2p runtime).
    pub level: usize,
    /// What the fault did.
    pub kind: FaultKind,
    /// The operation it hit.
    pub op: FaultOp,
    /// Source rank of the affected edge (the rank itself for rank fates).
    pub src: usize,
    /// Destination rank of the affected edge.
    pub dst: usize,
    /// Message tag (p2p) or round index (collectives).
    pub tag: u64,
    /// Delivery attempts consumed, including the final successful one.
    pub attempts: u32,
    /// Whether the transfer ultimately completed.
    pub recovered: bool,
    /// Simulated time charged for retries / backoff / stalls.
    pub penalty: SimTime,
}

/// Per-query statistics for one lane of a batched multi-source BFS wave
/// (schema v4). `Copy`, so it doubles as the in-ring payload of
/// [`TraceEvent::Query`] and the serialized record of
/// `TraceReport::queries`.
///
/// A wave fuses up to 64 admitted roots into one bit-parallel traversal;
/// each lane is one independent query riding that shared sweep, so the
/// record carries both the lane's own answer shape (`levels`, `visited`)
/// and the shared wave identity (`wave`, `batch`, `edges_scanned`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Wave (batch) index within the engine's lifetime.
    pub wave: u64,
    /// Lane index within the wave's 64-bit lane word.
    pub lane: u32,
    /// Number of lanes fused into the wave.
    pub batch: u32,
    /// BFS root this lane searched from.
    pub root: u64,
    /// Committed BFS levels of this lane, including the final empty one
    /// (matches the per-root reference engines' level count).
    pub levels: u32,
    /// Vertices this lane reached (root included).
    pub visited: u64,
    /// CSR adjacency entries the *whole wave* examined. Shared across the
    /// batch — the sharing is the point of bit-parallel fusion — so every
    /// lane of a wave carries the same value.
    pub edges_scanned: u64,
    /// Host wall-clock seconds of the wave this lane rode (zero under
    /// `NoClock`). Shared across the batch like `edges_scanned`.
    pub wall_secs: f64,
}

/// Integer byproducts of a collective cost evaluation: how the algorithm
/// moved the bytes, not just how long it took. Filled by the cost models in
/// `nbfs-comm` while they walk their rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CollectiveStats {
    /// Algorithm rounds executed (ring steps, doubling rounds, tree depth).
    pub rounds: u64,
    /// Wire flows solved by the network model across all rounds.
    pub flows: u64,
    /// Bytes that crossed the inter-node wire (post-codec: what the
    /// network model actually priced).
    pub wire_bytes: u64,
    /// Bytes moved through shared memory inside nodes.
    pub shm_bytes: u64,
    /// Wire bytes the same exchange would have moved uncompressed. Equal
    /// to `wire_bytes` under the `Raw` codec; the `wire/raw` quotient is
    /// the compression ratio the trace ledger reports. Schema v3; absent
    /// in v2 reports, whose imports backfill `raw_bytes = wire_bytes`
    /// (see the manual [`serde::Deserialize`] impl below).
    pub raw_bytes: u64,
}

/// Manual impl instead of the derive for one reason: schema-v2 reports
/// predate `raw_bytes`, and an uncompressed exchange's raw volume *is*
/// its wire volume, so the missing field backfills from `wire_bytes`
/// rather than erroring or defaulting to zero.
impl serde::Deserialize for CollectiveStats {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let entries = content
            .as_map_slice()
            .ok_or_else(|| serde::DeError::expected("map", content))?;
        let field = |name: &str| -> Result<u64, serde::DeError> {
            match serde::map_find(entries, name) {
                Some(value) => serde::Deserialize::from_content(value),
                None => Err(serde::DeError::missing_field(name)),
            }
        };
        let wire_bytes = field("wire_bytes")?;
        Ok(CollectiveStats {
            rounds: field("rounds")?,
            flows: field("flows")?,
            wire_bytes,
            shm_bytes: field("shm_bytes")?,
            raw_bytes: match serde::map_find(entries, "raw_bytes") {
                Some(value) => serde::Deserialize::from_content(value)?,
                None => wire_bytes,
            },
        })
    }
}

impl CollectiveStats {
    /// No work.
    pub const ZERO: CollectiveStats = CollectiveStats {
        rounds: 0,
        flows: 0,
        wire_bytes: 0,
        shm_bytes: 0,
        raw_bytes: 0,
    };

    /// Componentwise sum.
    pub fn merge(&mut self, other: CollectiveStats) {
        self.rounds += other.rounds;
        self.flows += other.flows;
        self.wire_bytes += other.wire_bytes;
        self.shm_bytes += other.shm_bytes;
        self.raw_bytes += other.raw_bytes;
    }
}

/// One record in an event ring.
///
/// Not serialized (see module docs); the variants carry everything the
/// report merge needs, keyed by `level` so that a wrapped ring still merges
/// correctly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The α/β heuristic chose a direction for a level.
    Decision {
        /// BFS level the decision applies to.
        level: usize,
        /// Direction of the previous level.
        prev: Direction,
        /// Direction chosen.
        chosen: Direction,
        /// Edges incident to the current frontier.
        m_f: u64,
        /// Edges incident to still-unvisited vertices.
        m_u: u64,
        /// Vertices in the current frontier.
        n_f: u64,
        /// Total vertices.
        n: u64,
    },
    /// One collective operation completed during a level.
    Collective {
        /// BFS level it ran in (the level *about* to be committed; the
        /// terminal allreduce carries the level that was never executed).
        level: usize,
        /// Which operation.
        kind: CollectiveKind,
        /// Step-wise simulated cost.
        cost: CommCost,
        /// Byte/round/flow counters.
        stats: CollectiveStats,
    },
    /// One rank's computation counters for one level.
    RankLevel {
        /// BFS level.
        level: usize,
        /// Rank id.
        rank: usize,
        /// Vertices this rank discovered.
        discovered: u64,
        /// Edges scanned (CSR adjacency entries touched).
        edges_scanned: u64,
        /// Summary-bitmap word probes issued (each non-zero result saved a
        /// full `in_queue` word load — the Section III.C instrument).
        summary_probes: u64,
        /// `in_queue` bitmap probes issued.
        inqueue_probes: u64,
        /// Bytes written to queues / parent entries.
        write_bytes: u64,
        /// Simulated computation time of this rank.
        comp: SimTime,
    },
    /// A committed BFS level: the per-level span whose fields sum to the
    /// Fig. 11 slices exactly (see `TraceReport::run_profile`).
    Level {
        /// BFS level index.
        level: usize,
        /// Direction executed.
        direction: Direction,
        /// Vertices discovered across all ranks.
        discovered: u64,
        /// Mean per-rank computation time.
        comp: SimTime,
        /// Communication time (collectives plus control allreduce).
        comm: SimTime,
        /// Barrier skew absorbed at the end of the level.
        stall: SimTime,
        /// Data-structure conversion time charged to this level.
        switch: SimTime,
        /// Step split of the bottom-up collectives (zero for top-down).
        detail: CommCost,
        /// Host wall-clock seconds spent in the kernels of this level
        /// (zero under `NoClock`).
        wall_comp_secs: f64,
    },
    /// An injected fault fired (schema v2). Carries the full record so the
    /// report merge is a copy.
    Fault(FaultRecord),
    /// One query lane of a batched multi-source wave completed (schema
    /// v4). Carries the full record so the report merge is a copy.
    Query(QueryRecord),
}

impl TraceEvent {
    /// The BFS level this event is keyed to. Query records span a whole
    /// wave rather than one level; they key to level 0.
    pub fn level(&self) -> usize {
        match *self {
            TraceEvent::Decision { level, .. }
            | TraceEvent::Collective { level, .. }
            | TraceEvent::RankLevel { level, .. }
            | TraceEvent::Level { level, .. } => level,
            TraceEvent::Fault(record) => record.level,
            TraceEvent::Query(_) => 0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_is_componentwise() {
        let mut a = CollectiveStats {
            rounds: 1,
            flows: 2,
            wire_bytes: 3,
            shm_bytes: 4,
            raw_bytes: 5,
        };
        a.merge(CollectiveStats {
            rounds: 10,
            flows: 20,
            wire_bytes: 30,
            shm_bytes: 40,
            raw_bytes: 50,
        });
        assert_eq!(
            a,
            CollectiveStats {
                rounds: 11,
                flows: 22,
                wire_bytes: 33,
                shm_bytes: 44,
                raw_bytes: 55,
            }
        );
    }

    #[test]
    fn events_expose_their_level() {
        let ev = TraceEvent::Collective {
            level: 7,
            kind: CollectiveKind::Allreduce,
            cost: CommCost::ZERO,
            stats: CollectiveStats::ZERO,
        };
        assert_eq!(ev.level(), 7);
    }

    #[test]
    fn fault_events_expose_their_level_and_labels() {
        let rec = FaultRecord {
            level: 3,
            kind: FaultKind::Drop,
            op: FaultOp::Collective(CollectiveKind::AllgatherWords),
            src: 1,
            dst: 2,
            tag: 0,
            attempts: 2,
            recovered: true,
            penalty: SimTime::ZERO,
        };
        assert_eq!(TraceEvent::Fault(rec).level(), 3);
        assert_eq!(rec.op.label(), "allgather-words");
        assert_eq!(FaultOp::P2p.label(), "p2p");
        assert_eq!(FaultOp::Rank.label(), "rank");
        // Labels are distinct across the whole kind matrix.
        for (i, a) in FaultKind::ALL.iter().enumerate() {
            for b in &FaultKind::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn kind_labels_are_distinct() {
        let kinds = [
            CollectiveKind::AllgatherWords,
            CollectiveKind::AllgatherSummary,
            CollectiveKind::Allgatherv,
            CollectiveKind::Alltoallv,
            CollectiveKind::Allreduce,
            CollectiveKind::Broadcast,
            CollectiveKind::Barrier,
            CollectiveKind::Expand2d,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
