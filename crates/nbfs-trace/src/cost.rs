//! Time accounting for collective operations.
//!
//! Fig. 6 of the paper splits a leader-based allgather into its three steps
//! (gather to leader / inter-node exchange / broadcast to children), and
//! Fig. 13 tracks which steps each optimization deletes. [`CommCost`]
//! carries exactly that split. It lives here (rather than in `nbfs-comm`,
//! which re-exports it) so that trace events can embed it without a
//! dependency cycle.

use serde::{Deserialize, Serialize};

use nbfs_util::SimTime;

/// The step-wise cost of one collective operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CommCost {
    /// Step 1 of Fig. 5a: intra-node aggregation to the leader.
    pub intra_gather: SimTime,
    /// Step 2: inter-node exchange on the wire.
    pub inter: SimTime,
    /// Step 3: intra-node distribution to children.
    pub intra_bcast: SimTime,
}

impl CommCost {
    /// Zero cost.
    pub const ZERO: CommCost = CommCost {
        intra_gather: SimTime::ZERO,
        inter: SimTime::ZERO,
        intra_bcast: SimTime::ZERO,
    };

    /// A cost with only the inter-node component.
    pub fn inter_only(t: SimTime) -> Self {
        CommCost {
            inter: t,
            ..CommCost::ZERO
        }
    }

    /// Total wall time of the collective (steps are sequential).
    pub fn total(&self) -> SimTime {
        self.intra_gather + self.inter + self.intra_bcast
    }

    /// Intra-node portion (steps 1 + 3).
    pub fn intra(&self) -> SimTime {
        self.intra_gather + self.intra_bcast
    }
}

impl std::ops::Add for CommCost {
    type Output = CommCost;
    fn add(self, rhs: CommCost) -> CommCost {
        CommCost {
            intra_gather: self.intra_gather + rhs.intra_gather,
            inter: self.inter + rhs.inter,
            intra_bcast: self.intra_bcast + rhs.intra_bcast,
        }
    }
}

impl std::ops::AddAssign for CommCost {
    fn add_assign(&mut self, rhs: CommCost) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_splits() {
        let c = CommCost {
            intra_gather: SimTime::from_millis(1.0),
            inter: SimTime::from_millis(2.0),
            intra_bcast: SimTime::from_millis(3.0),
        };
        assert!((c.total().as_millis() - 6.0).abs() < 1e-9);
        assert!((c.intra().as_millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn addition() {
        let a = CommCost::inter_only(SimTime::from_millis(1.0));
        let mut b = CommCost::ZERO;
        b += a;
        b += a;
        assert!((b.total().as_millis() - 2.0).abs() < 1e-9);
        assert_eq!(b.intra(), SimTime::ZERO);
    }
}
