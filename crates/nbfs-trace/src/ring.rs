//! A pre-sized event ring buffer.
//!
//! The ring is allocated once, up front, at its full capacity; pushing an
//! event after that never allocates (the `Vec::push` below lands in
//! reserved capacity, and overwrites reuse slots in place). When full, the
//! oldest event is overwritten and counted, so a runaway run degrades to
//! "most recent window" instead of unbounded memory — the discipline
//! DESIGN.md §8 documents.

use crate::event::TraceEvent;

/// Fixed-capacity ring of [`TraceEvent`]s with overwrite-oldest semantics.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped; 0 before that.
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (clamped to ≥ 1),
    /// allocating the full backing store immediately.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Records one event. Allocation-free: below capacity this pushes into
    /// reserved storage; at capacity it overwrites the oldest slot.
    // nbfs-analysis: hot-path
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }
    // nbfs-analysis: end-hot-path

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events oldest-first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &TraceEvent> {
        let (older, newer) = (&self.buf[self.head..], &self.buf[..self.head]);
        older.iter().chain(newer.iter())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::cost::CommCost;
    use crate::event::{CollectiveKind, CollectiveStats};

    fn ev(level: usize) -> TraceEvent {
        TraceEvent::Collective {
            level,
            kind: CollectiveKind::Allreduce,
            cost: CommCost::ZERO,
            stats: CollectiveStats::ZERO,
        }
    }

    fn levels(ring: &EventRing) -> Vec<usize> {
        ring.iter_in_order().map(|e| e.level()).collect()
    }

    #[test]
    fn fills_in_order_below_capacity() {
        let mut r = EventRing::with_capacity(4);
        assert!(r.is_empty());
        for i in 0..3 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert_eq!(levels(&r), vec![0, 1, 2]);
    }

    #[test]
    fn wraps_and_counts_drops() {
        let mut r = EventRing::with_capacity(3);
        for i in 0..7 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        // Oldest-first view holds the last three events.
        assert_eq!(levels(&r), vec![4, 5, 6]);
    }

    #[test]
    fn never_reallocates_past_construction() {
        let mut r = EventRing::with_capacity(8);
        let cap_before = r.buf.capacity();
        for i in 0..1000 {
            r.push(ev(i));
        }
        assert_eq!(r.buf.capacity(), cap_before);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(levels(&r), vec![2]);
        assert_eq!(r.dropped(), 1);
    }
}
