//! Trace recording configuration.

use serde::{Deserialize, Serialize};

/// Default per-ring event capacity used by [`TraceConfig::Standard`].
///
/// A BFS on an R-MAT graph runs ~6–10 levels; the control plane records a
/// handful of events per level and each rank exactly one, so 4096 slots
/// per ring never wrap in practice while staying a fixed, small
/// pre-allocation (events are small `Copy` values).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// How much run-event recording a scenario performs.
///
/// The default is [`TraceConfig::Off`], which must cost near-zero work on
/// the hot path: every record call reduces to one `Option` discriminant
/// check (see DESIGN.md §8 for the guarantee and the bench that pins it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceConfig {
    /// No recording. `Tracer::off()` — the engine's default.
    #[default]
    Off,
    /// Record into rings of [`DEFAULT_RING_CAPACITY`] events.
    Standard,
    /// Record into rings of the given capacity (clamped to at least 1).
    /// When a ring is full the oldest events are overwritten and counted
    /// in `TraceReport::dropped_events`.
    Ring(usize),
}

impl TraceConfig {
    /// Whether this configuration records anything at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, TraceConfig::Off)
    }

    /// Per-ring event capacity implied by this configuration (meaningful
    /// only when enabled).
    pub fn ring_capacity(&self) -> usize {
        match self {
            TraceConfig::Off | TraceConfig::Standard => DEFAULT_RING_CAPACITY,
            TraceConfig::Ring(n) => (*n).max(1),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn off_is_default_and_disabled() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.is_enabled());
        assert!(TraceConfig::Standard.is_enabled());
        assert!(TraceConfig::Ring(16).is_enabled());
    }

    #[test]
    fn ring_capacity_is_clamped() {
        assert_eq!(TraceConfig::Ring(0).ring_capacity(), 1);
        assert_eq!(TraceConfig::Ring(64).ring_capacity(), 64);
        assert_eq!(TraceConfig::Standard.ring_capacity(), DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn serde_round_trip() {
        for cfg in [
            TraceConfig::Off,
            TraceConfig::Standard,
            TraceConfig::Ring(128),
        ] {
            let v = serde_json::to_value(cfg).unwrap();
            let back: TraceConfig = serde_json::from_value(v).unwrap();
            assert_eq!(back, cfg);
        }
    }
}
