//! Execution-time breakdown of a distributed BFS run.
//!
//! Mirrors the slices of the paper's Fig. 11 — top-down computation,
//! bottom-up computation, top-down communication, bottom-up communication,
//! switch and stall — plus the step split of the bottom-up collectives that
//! Figs. 6/13 need. Since the trace layer landed, [`RunProfile`] is a
//! *projection* of the richer [`crate::TraceReport`]
//! ([`crate::TraceReport::run_profile`]); it remains the compact type the
//! harness averages across roots and the figures consume.

use serde::{Deserialize, Serialize};

use nbfs_util::SimTime;

use crate::cost::CommCost;
use crate::direction::Direction;
use crate::phase::Phase;

/// Profile of a single BFS level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelProfile {
    /// Direction executed.
    pub direction: Direction,
    /// Vertices discovered.
    pub discovered: u64,
    /// Mean per-rank computation time.
    pub comp: SimTime,
    /// Communication time (allgathers or alltoallv plus control).
    pub comm: SimTime,
    /// Barrier skew absorbed at the end of the level.
    pub stall: SimTime,
}

/// Accumulated profile of a whole BFS run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Top-down computation time (mean across ranks).
    pub td_comp: SimTime,
    /// Bottom-up computation time (mean across ranks).
    pub bu_comp: SimTime,
    /// Top-down communication time.
    pub td_comm: SimTime,
    /// Bottom-up communication time (the Fig. 12/13/14 quantity).
    pub bu_comm: SimTime,
    /// Step split of the bottom-up collectives (gather/inter/bcast).
    pub bu_comm_detail: CommCost,
    /// Conversion time at direction switches.
    pub switch: SimTime,
    /// Total barrier skew.
    pub stall: SimTime,
    /// Number of bottom-up communication phases (levels), for Fig. 12's
    /// "average time of each communication phase".
    pub bu_comm_phases: usize,
    /// Per-level profiles.
    pub levels: Vec<LevelProfile>,
}

impl RunProfile {
    /// Total simulated run time (the TEPS denominator).
    pub fn total(&self) -> SimTime {
        self.td_comp + self.bu_comp + self.td_comm + self.bu_comm + self.switch + self.stall
    }

    /// One slice of the breakdown.
    pub fn phase(&self, phase: Phase) -> SimTime {
        match phase {
            Phase::TdComp => self.td_comp,
            Phase::BuComp => self.bu_comp,
            Phase::TdComm => self.td_comm,
            Phase::BuComm => self.bu_comm,
            Phase::Switch => self.switch,
            Phase::Stall => self.stall,
        }
    }

    /// Fraction of total time spent in bottom-up communication — the
    /// y-axis of Fig. 14.
    pub fn bu_comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == SimTime::ZERO {
            0.0
        } else {
            self.bu_comm / t
        }
    }

    /// Mean duration of one bottom-up communication phase — the y-axis of
    /// Figs. 12 and 13.
    pub fn mean_bu_comm_phase(&self) -> SimTime {
        if self.bu_comm_phases == 0 {
            SimTime::ZERO
        } else {
            self.bu_comm / self.bu_comm_phases as f64
        }
    }

    /// Sums another run's profile into this one (for averaging across
    /// roots; divide by the run count afterwards via [`RunProfile::scaled`]).
    pub fn accumulate(&mut self, other: &RunProfile) {
        self.td_comp += other.td_comp;
        self.bu_comp += other.bu_comp;
        self.td_comm += other.td_comm;
        self.bu_comm += other.bu_comm;
        self.bu_comm_detail += other.bu_comm_detail;
        self.switch += other.switch;
        self.stall += other.stall;
        self.bu_comm_phases += other.bu_comm_phases;
    }

    /// Returns a copy with every time divided by `k` (phase counts are
    /// rounded to the nearest integer).
    pub fn scaled(&self, k: f64) -> RunProfile {
        assert!(k > 0.0);
        RunProfile {
            td_comp: self.td_comp / k,
            bu_comp: self.bu_comp / k,
            td_comm: self.td_comm / k,
            bu_comm: self.bu_comm / k,
            bu_comm_detail: CommCost {
                intra_gather: self.bu_comm_detail.intra_gather / k,
                inter: self.bu_comm_detail.inter / k,
                intra_bcast: self.bu_comm_detail.intra_bcast / k,
            },
            switch: self.switch / k,
            stall: self.stall / k,
            bu_comm_phases: ((self.bu_comm_phases as f64 / k).round()) as usize,
            levels: Vec::new(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn sample() -> RunProfile {
        RunProfile {
            td_comp: SimTime::from_millis(1.0),
            bu_comp: SimTime::from_millis(4.0),
            td_comm: SimTime::from_millis(0.5),
            bu_comm: SimTime::from_millis(3.0),
            bu_comm_detail: CommCost::inter_only(SimTime::from_millis(3.0)),
            switch: SimTime::from_millis(1.0),
            stall: SimTime::from_millis(0.5),
            bu_comm_phases: 6,
            levels: Vec::new(),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let p = sample();
        assert!((p.total().as_millis() - 10.0).abs() < 1e-9);
        assert!((p.bu_comm_fraction() - 0.3).abs() < 1e-9);
        assert!((p.mean_bu_comm_phase().as_millis() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn phase_lookup_covers_total() {
        let p = sample();
        let sum: SimTime = Phase::ALL.iter().map(|&ph| p.phase(ph)).sum();
        assert!((sum.as_secs() - p.total().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn accumulate_then_scale_averages() {
        let mut acc = RunProfile::default();
        acc.accumulate(&sample());
        acc.accumulate(&sample());
        let avg = acc.scaled(2.0);
        assert!((avg.total().as_millis() - 10.0).abs() < 1e-9);
        assert_eq!(avg.bu_comm_phases, 6);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = RunProfile::default();
        assert_eq!(p.total(), SimTime::ZERO);
        assert_eq!(p.bu_comm_fraction(), 0.0);
        assert_eq!(p.mean_bu_comm_phase(), SimTime::ZERO);
    }
}
