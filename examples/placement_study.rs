//! The Fig. 10 experiment: the `Original` hybrid BFS on a single
//! eight-socket node under every `mpirun`/`numactl` flag combination —
//! `noflag`, `--interleave=all` and `--bind-to-socket --bysocket` at
//! 1, 2, 4 and 8 processes per node.
//!
//! ```text
//! cargo run --release --example placement_study [scale]
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::GraphBuilder;
use numa_bfs::topology::{presets, PlacementPolicy};
use numa_bfs::util::stats::format_teps;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(16);

    println!("== placement study (Fig. 10): Original implementation, 1 node ==");
    let graph = GraphBuilder::rmat(scale, 16).seed(28).build();
    let machine = presets::xeon_x7550_node().scaled_to_graph(scale, 28);
    let root = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    let traversed = graph.component_edges(root) as f64;

    let mut rows: Vec<(String, f64)> = Vec::new();
    for ppn in [1usize, 2, 4, 8] {
        for policy in [PlacementPolicy::Noflag, PlacementPolicy::Interleave] {
            let label = format!("ppn={ppn}.{}", policy.label());
            let scenario = Scenario::builder(machine.clone(), OptLevel::OriginalPpn8)
                .placement(ppn, policy)
                .build()
                .expect("preset machine is valid");
            let t = DistributedBfs::new(&graph, &scenario)
                .run(root)
                .profile
                .total();
            rows.push((label, traversed / t.as_secs()));
        }
    }
    // bind-to-socket "only works when more than 8 processes are spawned":
    // every socket must receive a rank.
    let scenario = Scenario::builder(machine.clone(), OptLevel::OriginalPpn8)
        .placement(8, PlacementPolicy::BindToSocket)
        .build()
        .expect("preset machine is valid");
    let t = DistributedBfs::new(&graph, &scenario)
        .run(root)
        .profile
        .total();
    rows.push(("ppn=8.bind-to-socket".into(), traversed / t.as_secs()));

    let best = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    println!("\n{:<24} {:>14} {:>10}", "configuration", "TEPS", "vs best");
    for (label, teps) in &rows {
        println!(
            "{:<24} {:>14} {:>9.2}x",
            label,
            format_teps(*teps),
            teps / best
        );
    }

    let find = |label: &str| {
        rows.iter()
            .find(|(l, _)| l == label)
            .map(|(_, teps)| *teps)
            .expect("row present")
    };
    println!(
        "\npaper's headline ratios (scale 28, Fig. 10): bind/interleave = 1.74x, bind/noflag(ppn=8) = 2.08x"
    );
    println!(
        "this run:                                  bind/interleave = {:.2}x, bind/noflag(ppn=8) = {:.2}x",
        find("ppn=8.bind-to-socket") / find("ppn=1.interleave"),
        find("ppn=8.bind-to-socket") / find("ppn=8.noflag"),
    );
}
