//! A Graph500-style benchmark run: the full measurement procedure of the
//! paper's Section IV.A — generate, partition, run N random roots, validate
//! every tree, report harmonic-mean TEPS.
//!
//! ```text
//! cargo run --release --example graph500 [-- --scale 16 --nodes 16 --roots 16 --opt best]
//! ```
//!
//! `--opt` is one of: `ppn1`, `ppn8`, `share-in-queue`, `share-all`,
//! `par-allgather`, `best` (granularity 256).

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::prelude::*;
use numa_bfs::topology::presets;
use numa_bfs::util::stats::format_teps;

struct Args {
    scale: u32,
    nodes: usize,
    roots: usize,
    opt: OptLevel,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 16,
        nodes: 16,
        roots: 16,
        opt: OptLevel::Granularity(256),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let next = |i: usize| -> &str {
            argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                args.scale = next(i).parse().expect("bad --scale");
                i += 2;
            }
            "--nodes" => {
                args.nodes = next(i).parse().expect("bad --nodes");
                i += 2;
            }
            "--roots" => {
                args.roots = next(i).parse().expect("bad --roots");
                i += 2;
            }
            "--opt" => {
                args.opt = match next(i) {
                    "ppn1" => OptLevel::OriginalPpn1,
                    "ppn8" => OptLevel::OriginalPpn8,
                    "share-in-queue" => OptLevel::ShareInQueue,
                    "share-all" => OptLevel::ShareAll,
                    "par-allgather" => OptLevel::ParAllgather,
                    "best" => OptLevel::Granularity(256),
                    other => {
                        eprintln!("unknown --opt {other}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!("== Graph500-style run ==");
    println!(
        "SCALE {} | edgefactor 16 | {} nodes | {} | {} roots",
        args.scale,
        args.nodes,
        args.opt.label(),
        args.roots
    );

    let t0 = std::time::Instant::now();
    let graph = GraphBuilder::rmat(args.scale, 16).seed(1).build();
    println!(
        "kernel 1 (construction): {:.2}s wall — {} vertices, {} edges",
        t0.elapsed().as_secs_f64(),
        graph.num_vertices(),
        graph.num_edges()
    );

    let machine = presets::xeon_x7550_cluster(args.nodes).scaled_to_graph(args.scale, 28);
    let scenario = Scenario::builder(machine, args.opt)
        .build()
        .expect("preset machine is valid");
    let harness = Graph500Harness::new(&graph, &scenario);

    let t1 = std::time::Instant::now();
    let config = HarnessConfig::builder()
        .roots(args.roots)
        .seed(2012)
        .validate(true)
        .build();
    let result = harness.run(&config);
    println!(
        "kernel 2 (BFS x{} + validation): {:.2}s wall",
        args.roots,
        t1.elapsed().as_secs_f64()
    );

    println!("\nper-root results:");
    for r in result.per_root.iter().take(8) {
        println!(
            "  root {:>8}: {:>12} traversed, {} -> {}",
            r.root,
            r.traversed_edges,
            r.time,
            format_teps(r.teps)
        );
    }
    if result.per_root.len() > 8 {
        println!("  ... ({} more)", result.per_root.len() - 8);
    }

    println!(
        "\nharmonic-mean TEPS: {}",
        format_teps(result.harmonic_teps())
    );
    println!(
        "mean / min / max:   {} / {} / {}",
        format_teps(result.teps.mean),
        format_teps(result.teps.min),
        format_teps(result.teps.max)
    );
    println!(
        "bottom-up communication share of total time: {:.1}%",
        100.0 * result.mean_profile.bu_comm_fraction()
    );
}
