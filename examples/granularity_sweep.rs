//! The Fig. 16 experiment: sweep the `in_queue_summary` granularity and
//! watch the cache-locality / zero-fraction trade-off of Section III.C.
//!
//! ```text
//! cargo run --release --example granularity_sweep [scale]
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::{vid, GraphBuilder};
use numa_bfs::topology::presets;
use numa_bfs::util::stats::format_teps;
use numa_bfs::util::units::format_bytes;
use numa_bfs::util::{Bitmap, SummaryBitmap};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(16);

    println!("== summary-bitmap granularity sweep (Fig. 16) ==");
    let graph = GraphBuilder::rmat(scale, 16).seed(32).build();
    // Fig. 16 runs scale 32 on 16 nodes; scale the caches by the same
    // factor so the summary-size-to-cache regime matches.
    let machine = presets::xeon_x7550_cluster(16).scaled_to_graph(scale, 32);
    let root = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    let traversed = graph.component_edges(root) as f64;

    // Show the structural trade-off on a mid-search frontier first.
    let mid_frontier = {
        let run = numa_bfs::core::seq::bfs_hybrid(
            &graph,
            root,
            numa_bfs::core::direction::SwitchPolicy::default(),
        );
        // Rebuild the frontier bitmap of the biggest bottom-up level.
        let mut bm = Bitmap::new(graph.num_vertices());
        let biggest = run
            .levels
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.discovered)
            .map(|(i, _)| i)
            .unwrap_or(0);
        // Re-run levels to capture that frontier.
        let mut parent = vec![u32::MAX; graph.num_vertices()];
        parent[root] = vid::to_stored(root);
        let mut frontier = vec![vid::to_stored(root)];
        for _ in 0..biggest {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in graph.neighbours(u as usize) {
                    if parent[v as usize] == u32::MAX {
                        parent[v as usize] = u;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        for &v in &frontier {
            bm.set(v as usize);
        }
        bm
    };

    println!("\nstructural trade-off on the peak frontier:");
    println!(
        "{:<14} {:>12} {:>12}",
        "granularity", "summary size", "zero frac"
    );
    for g in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let s = SummaryBitmap::build(&mid_frontier, g);
        println!(
            "{:<14} {:>12} {:>11.1}%",
            g,
            format_bytes(s.size_bytes()),
            100.0 * s.zero_fraction()
        );
    }

    println!("\nend-to-end sweep (paper peaks at 256, +10.2% over 64):");
    println!("{:<14} {:>14} {:>10}", "granularity", "TEPS", "vs g=64");
    let mut baseline = None;
    for g in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let scenario = Scenario::builder(machine.clone(), OptLevel::Granularity(g))
            .build()
            .expect("preset machine is valid");
        let t = DistributedBfs::new(&graph, &scenario)
            .run(root)
            .profile
            .total();
        let teps = traversed / t.as_secs();
        let base = *baseline.get_or_insert(teps);
        println!(
            "{:<14} {:>14} {:>9.1}%",
            g,
            format_teps(teps),
            100.0 * (teps / base - 1.0)
        );
    }
}
