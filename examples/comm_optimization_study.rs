//! The communication-optimization study of Figs. 13 and 14: weak-scale the
//! graph from 1 to 8 nodes and measure, for each rung of the optimization
//! ladder, the average time of one bottom-up communication phase and its
//! share of total execution time.
//!
//! ```text
//! cargo run --release --example comm_optimization_study [base_scale]
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::GraphBuilder;
use numa_bfs::topology::presets;

fn main() {
    let base_scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(14);

    println!("== communication optimizations under weak scaling (Figs. 12-14) ==");
    println!("(scale grows with the node count: one graph share per node)\n");

    let ladder = [
        OptLevel::OriginalPpn8,
        OptLevel::ShareInQueue,
        OptLevel::ShareAll,
        OptLevel::ParAllgather,
    ];

    println!(
        "{:<8} {:<8} {:<18} {:>16} {:>12}",
        "nodes", "scale", "implementation", "comm/phase", "comm share"
    );
    for (i, nodes) in (0u32..).zip([1usize, 2, 4, 8]) {
        let scale = base_scale + i;
        let graph = GraphBuilder::rmat(scale, 16).seed(9).build();
        let machine = presets::xeon_x7550_cluster(nodes).scaled_to_graph(base_scale, 28);
        let root = (0..graph.num_vertices())
            .max_by_key(|&v| graph.degree(v))
            .expect("non-empty graph");
        for opt in ladder {
            let scenario = Scenario::builder(machine.clone(), opt)
                .build()
                .expect("preset machine is valid");
            let run = DistributedBfs::new(&graph, &scenario).run(root);
            println!(
                "{:<8} {:<8} {:<18} {:>16} {:>11.1}%",
                nodes,
                scale,
                opt.label(),
                format!("{}", run.profile.mean_bu_comm_phase()),
                100.0 * run.profile.bu_comm_fraction()
            );
        }
        println!();
    }

    println!("paper (8 nodes, scale 31): Original.ppn=8 spends 54% of time in bottom-up");
    println!("communication; the three optimizations bring it down to 18% (Fig. 14)");
    println!("and reduce the per-phase time 4.07x (Fig. 13).");
}
