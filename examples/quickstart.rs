//! Quickstart: generate a Graph500 R-MAT graph, run the fully optimized
//! hybrid BFS on a simulated 16-node NUMA cluster, and print the execution
//! breakdown of Fig. 11.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::prelude::*;
use numa_bfs::topology::presets;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(16);

    println!("== numa-bfs quickstart ==");
    println!("generating R-MAT graph: scale {scale}, edge factor 16 ...");
    let graph = GraphBuilder::rmat(scale, 16).seed(42).build();
    println!(
        "  {} vertices, {} undirected edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // The paper's platform: 16 eight-socket Xeon X7550 nodes (Table I),
    // with caches scaled to keep the paper's size regimes at this scale.
    let machine = presets::cluster2012().scaled_to_graph(scale, 28);
    println!(
        "machine: {} nodes x {} sockets x {} cores = {} cores",
        machine.nodes,
        machine.sockets_per_node,
        machine.socket.cores,
        machine.total_cores()
    );

    // Run the best configuration: one bound rank per socket, all shared
    // buffers, parallel allgather, granularity 256.
    let scenario = Scenario::builder(machine, OptLevel::Granularity(256))
        .build()
        .expect("preset machine is valid");
    let engine = DistributedBfs::new(&graph, &scenario);

    let root = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .expect("graph is non-empty");
    println!("running hybrid BFS from root {root} ...");
    let run = engine.run(root);

    let visited = validate_bfs_tree(&graph, root, &run.parent).expect("tree must validate");
    println!("  visited {visited} vertices; BFS tree validated (Graph500 rules)");

    let p = &run.profile;
    println!("\nexecution breakdown (simulated time):");
    for phase in Phase::ALL {
        let t = p.phase(phase);
        println!(
            "  {:<16} {:>12}   {:>5.1}%",
            phase.label(),
            format!("{t}"),
            100.0 * (t / p.total())
        );
    }
    println!("  {:<16} {:>12}", "total", format!("{}", p.total()));

    let traversed = graph.component_edges(root) as f64;
    println!(
        "\nperformance: {}",
        format_teps(traversed / p.total().as_secs())
    );
    println!(
        "levels: {} ({} bottom-up communication phases)",
        p.levels.len(),
        p.bu_comm_phases
    );
}
