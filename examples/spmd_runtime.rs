//! Demonstrates the functional SPMD substrate directly: rank threads with
//! mailboxes exchange a frontier bitmap through the node-shared regions of
//! Section III.A, and the result is checked against the engine's collective.
//!
//! ```text
//! cargo run --release --example spmd_runtime
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::comm::allgather::{allgather_words, AllgatherAlgorithm};
use numa_bfs::comm::buffers::SharedFrontier;
use numa_bfs::comm::runtime::run_spmd;
use numa_bfs::comm::tags;
use numa_bfs::simnet::NetworkModel;
use numa_bfs::topology::{presets, PlacementPolicy, ProcessMap};
use numa_bfs::util::Bitmap;

fn main() {
    let machine = presets::xeon_x7550_cluster(2);
    let pmap = ProcessMap::new(&machine, 8, PlacementPolicy::BindToSocket);
    let net = NetworkModel::new(&machine);
    let np = pmap.world_size();
    let n_bits = 1 << 16;

    println!(
        "== SPMD runtime demo: {np} rank threads on {} nodes ==",
        pmap.nodes()
    );

    // A reference frontier every rank should end up seeing.
    let mut reference = Bitmap::new(n_bits);
    for i in (0..n_bits).step_by(13) {
        reference.set(i);
    }

    // --- Path 1: threaded ranks, real message passing ------------------
    let reference_ref = &reference;
    let t0 = std::time::Instant::now();
    let views = run_spmd(np, |ctx| {
        // Each rank contributes only its own word segment...
        let part = nbfs_util_part(n_bits, ctx.world());
        let (ws, we) = part.word_range(ctx.rank());
        let mine: Vec<u8> = reference_ref.words()[ws..we]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        ctx.barrier().unwrap();
        // ...and ring-allgathers the rest over channels.
        let chunks = ctx.allgather_bytes(mine, tags::DEMO_FRONTIER).unwrap();
        chunks
            .into_iter()
            .flat_map(|c| {
                c.chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                    .collect::<Vec<u64>>()
            })
            .collect::<Vec<u64>>()
    })
    .unwrap();
    println!(
        "threaded ring allgather over mailboxes: {:.1} ms wall",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // --- Path 2: the node-shared regions (the paper's mmap sharing) ----
    let shared = SharedFrontier::new(n_bits, &pmap);
    let part = shared.partition();
    for rank in 0..np {
        let (ws, we) = part.word_range(rank);
        shared.publish_segment(rank, &reference.words()[ws..we]);
    }
    let cost = shared.exchange(&pmap, &net, AllgatherAlgorithm::ParallelSubgroup);
    println!("shared-region exchange simulated cost: {}", cost.total());

    // --- Path 3: the BSP collective the engine uses ---------------------
    let parts: Vec<Vec<u64>> = (0..np)
        .map(|r| {
            let (ws, we) = part.word_range(r);
            reference.words()[ws..we].to_vec()
        })
        .collect();
    let bsp = allgather_words(&parts, &pmap, &net, AllgatherAlgorithm::ParallelSubgroup);

    // All three agree bit for bit.
    for (rank, view) in views.iter().enumerate() {
        assert_eq!(view, &bsp.words, "rank {rank} threaded view diverged");
    }
    for rank in 0..np {
        assert_eq!(
            shared.read(rank, 1).bitmap().snapshot().words(),
            bsp.words.as_slice(),
            "rank {rank} shared view diverged"
        );
    }
    println!(
        "all {np} threaded views, {} shared regions and the BSP collective agree ({} words)",
        shared.num_regions(),
        bsp.words.len()
    );
}

/// The same word-aligned block partition the engine uses.
fn nbfs_util_part(n_bits: usize, parts: usize) -> numa_bfs::util::BlockPartition {
    numa_bfs::util::BlockPartition::new(n_bits, parts)
}
