//! The public result types serialize: downstream tooling consumes run
//! profiles, harness results and machine configurations as JSON.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::harness::{Graph500Harness, HarnessConfig};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::stats::DegreeStats;
use numa_bfs::graph::GraphBuilder;
use numa_bfs::topology::MachineConfig;

#[test]
fn machine_config_roundtrips_through_json() {
    let m = numa_bfs::topology::presets::cluster2012_with_weak_node();
    let json = serde_json::to_string(&m).unwrap();
    let back: MachineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(m, back);
}

#[test]
fn run_profile_serializes_with_all_phases() {
    let g = GraphBuilder::rmat(10, 8).seed(2).build();
    let scenario = Scenario::new(MachineConfig::small_test_cluster(2, 2), OptLevel::ShareAll);
    let run = DistributedBfs::new(&g, &scenario).run(0);
    let json = serde_json::to_value(&run.profile).unwrap();
    for key in ["td_comp", "bu_comp", "bu_comm", "switch", "stall", "levels"] {
        assert!(json.get(key).is_some(), "missing {key}");
    }
    // Levels carry the direction enum as text.
    if let Some(level) = json["levels"].as_array().and_then(|l| l.first()) {
        assert!(level["direction"].is_string());
    }
}

#[test]
fn harness_result_serializes() {
    let g = GraphBuilder::rmat(10, 8).seed(2).build();
    let scenario = Scenario::new(MachineConfig::small_test_cluster(2, 2), OptLevel::ShareAll);
    let harness = Graph500Harness::new(&g, &scenario);
    let result = harness.run(&HarnessConfig::quick(2));
    let json = serde_json::to_value(&result).unwrap();
    assert!(json["teps"]["harmonic_mean"].as_f64().unwrap() > 0.0);
    assert_eq!(json["per_root"].as_array().unwrap().len(), 2);
}

#[test]
fn degree_stats_serialize() {
    let g = GraphBuilder::rmat(10, 8).seed(2).build();
    let s = DegreeStats::compute(&g);
    let json = serde_json::to_value(&s).unwrap();
    assert_eq!(json["num_vertices"].as_u64().unwrap(), 1024);
    let back: DegreeStats = serde_json::from_value(json).unwrap();
    assert_eq!(back.num_edges, s.num_edges);
}

#[test]
fn comparison_2d_serializes() {
    let g = GraphBuilder::rmat(11, 8).seed(9).build();
    let scenario = Scenario::new(
        MachineConfig::small_test_cluster(2, 4),
        OptLevel::ParAllgather,
    );
    let root = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    let cmp = numa_bfs::core::ext2d::TwoDimComparison::analyze(&g, &scenario, root);
    let json = serde_json::to_value(&cmp).unwrap();
    assert_eq!(json["cols"].as_u64().unwrap(), 4);
    assert!(json["levels"].as_array().is_some());
}
