//! Golden snapshots of the Fig. 11 collective-volume ledger: per-kind
//! call / round / flow / byte totals for the two scenarios the paper
//! contrasts at scale 16 — `Original.ppn=8` (private buffers, ring
//! allgather) and `Share all` (both summary and in-queue shared).
//!
//! The goldens pin the cost model's *communication volume* independent of
//! timing parameters: any change to collective call sites, round counts
//! or wire/shm byte accounting trips a diff here. Regenerate on purpose
//! with:
//!
//! ```text
//! NBFS_UPDATE_GOLDEN=1 cargo test --test golden_ledger
//! ```

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use numa_bfs::comm::codec::Codec;
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::GraphBuilder;
use numa_bfs::topology::presets;
use numa_bfs::trace::{TraceConfig, TraceReport};

const SCALE: u32 = 16;
const NODES: usize = 16;

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct LedgerRow {
    calls: u64,
    rounds: u64,
    flows: u64,
    raw_bytes: u64,
    wire_bytes: u64,
    shm_bytes: u64,
}

/// Aggregate every collective record of the report (levels and the
/// post-run tail) into one row per collective kind, sorted by label.
fn ledger(report: &TraceReport) -> BTreeMap<&'static str, LedgerRow> {
    let mut table: BTreeMap<&'static str, LedgerRow> = BTreeMap::new();
    let records = report
        .levels
        .iter()
        .flat_map(|l| l.collectives.iter())
        .chain(report.post_collectives.iter());
    for record in records {
        let row = table.entry(record.kind.label()).or_default();
        row.calls += 1;
        row.rounds += record.stats.rounds;
        row.flows += record.stats.flows;
        row.raw_bytes += record.stats.raw_bytes;
        row.wire_bytes += record.stats.wire_bytes;
        row.shm_bytes += record.stats.shm_bytes;
    }
    table
}

/// Canonical JSON rendering (sorted keys, fixed indentation) so the
/// golden diff is stable and reviewable without a serializer.
fn render(table: &BTreeMap<&'static str, LedgerRow>) -> String {
    let mut out = String::from("{\n");
    for (i, (label, row)) in table.iter().enumerate() {
        let comma = if i + 1 == table.len() { "" } else { "," };
        writeln!(
            out,
            "  \"{label}\": {{ \"calls\": {}, \"rounds\": {}, \"flows\": {}, \
             \"raw_bytes\": {}, \"wire_bytes\": {}, \"shm_bytes\": {} }}{comma}",
            row.calls, row.rounds, row.flows, row.raw_bytes, row.wire_bytes, row.shm_bytes
        )
        .unwrap();
    }
    out.push_str("}\n");
    out
}

fn trace_scale16(opt: OptLevel) -> TraceReport {
    trace_scale16_codec(opt, Codec::Raw)
}

fn trace_scale16_codec(opt: OptLevel, codec: Codec) -> TraceReport {
    let g = GraphBuilder::rmat(SCALE, 16).seed(1).build();
    let machine = presets::xeon_x7550_cluster(NODES).scaled_to_graph(SCALE, 28);
    let scenario = Scenario::builder(machine, opt)
        .trace(TraceConfig::Standard)
        .codec(codec)
        .build()
        .unwrap();
    let root = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    let (_, report) = DistributedBfs::new(&g, &scenario).run_traced(root);
    report
}

fn check_golden(name: &str, rendered: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("NBFS_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with NBFS_UPDATE_GOLDEN=1)",
            name
        )
    });
    assert_eq!(
        rendered, golden,
        "collective-volume ledger drifted from {name}; if the change is \
         intentional regenerate with NBFS_UPDATE_GOLDEN=1"
    );
}

#[test]
fn fig11_ledger_original_ppn8_is_pinned() {
    let report = trace_scale16(OptLevel::OriginalPpn8);
    let table = ledger(&report);
    // Sanity on shape before pinning bytes: the ring exchange of the
    // baseline pushes every frontier segment over the wire.
    assert!(table.contains_key("allreduce"), "control plane missing");
    assert!(
        table.values().any(|row| row.wire_bytes > 0),
        "Original.ppn=8 recorded no wire traffic"
    );
    check_golden("fig11_ledger_original_ppn8.json", &render(&table));
}

#[test]
fn fig11_ledger_share_all_is_pinned() {
    let report = trace_scale16(OptLevel::ShareAll);
    let table = ledger(&report);
    assert!(table.contains_key("allreduce"), "control plane missing");
    // Share-all moves intra-node exchange into shared regions; some of
    // the collective volume must actually land there.
    assert!(
        table.values().any(|row| row.shm_bytes > 0),
        "Share all recorded no shared-region traffic"
    );
    check_golden("fig11_ledger_share_all.json", &render(&table));
}

/// The compression layer under `Share all`: same scenario as the plain
/// share-all pin but with the delta-varint wire codec. Pins the
/// raw-vs-wire split of the compressed run, so both the codec's output
/// sizes and the honest raw accounting are frozen.
#[test]
fn fig11_ledger_share_all_delta_varint_is_pinned() {
    let report = trace_scale16_codec(OptLevel::ShareAll, Codec::DeltaVarint);
    let table = ledger(&report);
    assert!(table.contains_key("allreduce"), "control plane missing");
    // Compression must actually bite at this scale: summed over the run,
    // the encoded wire volume undercuts the raw volume it stands in for.
    let raw: u64 = table.values().map(|r| r.raw_bytes).sum();
    let wire: u64 = table.values().map(|r| r.wire_bytes).sum();
    assert!(
        wire < raw,
        "delta-varint wire volume {wire} must undercut raw {raw}"
    );
    check_golden("fig11_ledger_share_all_delta_varint.json", &render(&table));
}

/// A raw run charges every collective exactly its uncompressed size: the
/// raw/wire split is the identity, and the raw ledger of the compressed
/// run matches the wire ledger of the uncompressed one wherever no
/// records were sieved away (delta-varint never drops records).
#[test]
fn raw_accounting_is_honest() {
    let raw_run = ledger(&trace_scale16(OptLevel::ShareAll));
    for (label, row) in &raw_run {
        assert_eq!(
            row.raw_bytes, row.wire_bytes,
            "{label}: raw codec must charge raw == wire"
        );
    }
    let dv_run = ledger(&trace_scale16_codec(OptLevel::ShareAll, Codec::DeltaVarint));
    for (label, row) in &dv_run {
        let base = raw_run
            .get(label)
            .unwrap_or_else(|| panic!("{label} missing from raw run"));
        assert_eq!(
            row.raw_bytes, base.wire_bytes,
            "{label}: compressed run's raw accounting drifted from the raw run"
        );
    }
}

/// The two scenarios differ exactly the way Fig. 11 says: sharing strictly
/// reduces the wire volume of the frontier exchange.
#[test]
fn sharing_strictly_reduces_wire_volume() {
    let base = ledger(&trace_scale16(OptLevel::OriginalPpn8));
    let shared = ledger(&trace_scale16(OptLevel::ShareAll));
    let wire = |t: &BTreeMap<&str, LedgerRow>| -> u64 { t.values().map(|r| r.wire_bytes).sum() };
    assert!(
        wire(&shared) < wire(&base),
        "share-all wire volume {} must undercut original {}",
        wire(&shared),
        wire(&base)
    );
}
