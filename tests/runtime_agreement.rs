//! The threaded SPMD runtime and the BSP collective simulation must agree:
//! a frontier-bitmap allgather run over real rank threads with real message
//! passing produces exactly the words the engine's one-shot collective
//! produces.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::comm::allgather::{allgather_words, AllgatherAlgorithm};
use numa_bfs::comm::runtime::run_spmd;
use numa_bfs::comm::tags;
use numa_bfs::simnet::NetworkModel;
use numa_bfs::topology::{presets, PlacementPolicy, ProcessMap};
use numa_bfs::util::{Bitmap, BlockPartition};

fn demo_segments(n_bits: usize, np: usize) -> Vec<Vec<u64>> {
    let part = BlockPartition::new(n_bits, np);
    let mut full = Bitmap::new(n_bits);
    for i in (0..n_bits).step_by(7) {
        full.set(i);
    }
    (0..np)
        .map(|r| {
            let (ws, we) = part.word_range(r);
            full.words()[ws..we].to_vec()
        })
        .collect()
}

#[test]
fn threaded_ring_allgather_matches_bsp_collective() {
    let machine = presets::xeon_x7550_cluster(2);
    let pmap = ProcessMap::new(&machine, 8, PlacementPolicy::BindToSocket);
    let net = NetworkModel::new(&machine);
    let np = pmap.world_size();
    let segments = demo_segments(4096, np);

    // BSP path (what the engine uses).
    let bsp = allgather_words(&segments, &pmap, &net, AllgatherAlgorithm::Ring);

    // Threaded path: every rank contributes its segment as bytes and ring-
    // allgathers them over real channels.
    let seg_ref = &segments;
    let views = run_spmd(np, |ctx| {
        let mine: Vec<u8> = seg_ref[ctx.rank()]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        ctx.allgather_bytes(mine, tags::FRONTIER_WORDS).unwrap()
    })
    .unwrap();

    for (rank, view) in views.into_iter().enumerate() {
        let words: Vec<u64> = view
            .into_iter()
            .flat_map(|chunk| {
                chunk
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .collect::<Vec<u64>>()
            })
            .collect();
        assert_eq!(words, bsp.words, "rank {rank} view diverged");
    }
}

#[test]
fn threaded_runtime_supports_unequal_segments() {
    let machine = presets::xeon_x7550_cluster(2);
    let pmap = ProcessMap::new(&machine, 4, PlacementPolicy::Interleave);
    let net = NetworkModel::new(&machine);
    let np = pmap.world_size();
    // 100 bits over 8 ranks: trailing ranks own nothing.
    let segments = demo_segments(100, np);
    assert!(
        segments.iter().any(Vec::is_empty),
        "exercise empty segments"
    );

    let bsp = allgather_words(&segments, &pmap, &net, AllgatherAlgorithm::LeaderBased);
    let seg_ref = &segments;
    let views = run_spmd(np, |ctx| {
        let mine: Vec<u8> = seg_ref[ctx.rank()]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect();
        ctx.allgather_bytes(mine, tags::FRONTIER_RAGGED).unwrap()
    })
    .unwrap();
    let words: Vec<u64> = views[0]
        .iter()
        .flat_map(|chunk| {
            chunk
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        })
        .collect();
    assert_eq!(words, bsp.words);
}
