//! The codec conformance matrix: every wire codec, on every collective
//! path that carries frontier payloads, must leave the BFS *answer*
//! untouched. Compression (and the sieve) may only change what crosses
//! the simulated wire — parents, visited sets and discovery schedules
//! are bit-identical to the `Raw` baseline.
//!
//! This is the acceptance gate for the Compression & Sieve layer
//! (Lv et al., arXiv:1208.5542): the paper's trick is sound precisely
//! because dropping already-sieved records and re-encoding the rest is
//! invisible to the algorithm. Cells cover the opt ladder (allgather
//! variants over words and sparse lists), the alltoallv top-down
//! strategy, and the 2-D engine, at scales 14–18.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::comm::codec::Codec;
use numa_bfs::core::engine::{BfsRun, DistributedBfs, Scenario, TdStrategy};
use numa_bfs::core::engine2d::TwoDimBfs;
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::{Csr, GraphBuilder};
use numa_bfs::topology::presets;
use numa_bfs::trace::TraceConfig;

const NODES: usize = 16;

fn graph(scale: u32) -> Csr {
    GraphBuilder::rmat(scale, 16).seed(3).build()
}

fn root_of(g: &Csr) -> usize {
    (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap()
}

fn scenario(scale: u32, opt: OptLevel, td: TdStrategy, codec: Codec) -> Scenario {
    let machine = presets::xeon_x7550_cluster(NODES).scaled_to_graph(scale, 28);
    Scenario::builder(machine, opt)
        .td_strategy(td)
        .trace(TraceConfig::Standard)
        .codec(codec)
        .build()
        .unwrap()
}

fn assert_identical(cell: &str, base: &BfsRun, run: &BfsRun) {
    assert_eq!(base.parent, run.parent, "{cell}: parents diverged");
    assert_eq!(base.visited, run.visited, "{cell}: visited diverged");
    assert_eq!(
        base.profile.levels.len(),
        run.profile.levels.len(),
        "{cell}: level count diverged"
    );
    for (i, (b, r)) in base
        .profile
        .levels
        .iter()
        .zip(&run.profile.levels)
        .enumerate()
    {
        assert_eq!(
            b.discovered, r.discovered,
            "{cell}: level {i} discovery schedule diverged"
        );
        assert_eq!(b.direction, r.direction, "{cell}: level {i} direction");
    }
}

/// One differential cell: run Raw and `codec` on the same scenario and
/// demand a bit-identical answer. Returns the (raw wire, codec wire)
/// totals so callers can additionally pin compression where expected.
fn wire_bytes_cell(scale: u32, opt: OptLevel, td: TdStrategy, codec: Codec) -> (u64, u64) {
    let g = graph(scale);
    let root = root_of(&g);
    let cell = format!("scale {scale} {} {td:?} {}", opt.label(), codec.label());
    let (base, base_report) =
        DistributedBfs::new(&g, &scenario(scale, opt, td, Codec::Raw)).run_traced(root);
    let (run, report) = DistributedBfs::new(&g, &scenario(scale, opt, td, codec)).run_traced(root);
    assert_identical(&cell, &base, &run);
    let wire = |r: &numa_bfs::trace::TraceReport| -> u64 {
        r.levels
            .iter()
            .flat_map(|l| l.collectives.iter())
            .chain(r.post_collectives.iter())
            .map(|c| c.stats.wire_bytes)
            .sum()
    };
    (wire(&base_report), wire(&report))
}

/// The dense-words path: the full opt ladder exchanges bitmap words (and
/// the bottom-up summary) through the allgather variants. Every codec
/// must reproduce Raw's answer on each rung.
#[test]
fn codecs_preserve_answers_across_the_opt_ladder() {
    for opt in OptLevel::LADDER {
        for &codec in &Codec::ALL {
            if codec.is_raw() {
                continue;
            }
            wire_bytes_cell(14, opt, TdStrategy::SparseAllgather, codec);
        }
    }
}

/// The alltoallv top-down strategy: record exchange plus (for `Sieve`)
/// the pre-exchange parent sieve. Bit-identical answers, and for the
/// compressible codecs at this scale the wire volume must shrink.
#[test]
fn codecs_preserve_answers_under_alltoallv_top_down() {
    for &codec in &Codec::ALL {
        if codec.is_raw() {
            continue;
        }
        let (raw, wire) = wire_bytes_cell(15, OptLevel::ShareAll, TdStrategy::Alltoallv, codec);
        assert!(
            wire < raw,
            "{} under alltoallv: wire {wire} must undercut raw {raw}",
            codec.label()
        );
    }
}

/// The 2-D engine: expand along columns, fold along rows, with the fold
/// exchange re-encoded (and sieved) per codec.
#[test]
fn codecs_preserve_answers_in_the_2d_engine() {
    let g = graph(14);
    let root = root_of(&g);
    let mk = |codec: Codec| {
        let machine = presets::xeon_x7550_cluster(NODES).scaled_to_graph(14, 28);
        let scenario = Scenario::builder(machine, OptLevel::OriginalPpn8)
            .trace(TraceConfig::Standard)
            .codec(codec)
            .build()
            .unwrap();
        TwoDimBfs::new(&g, &scenario).run_traced(root)
    };
    let (base, _) = mk(Codec::Raw);
    for &codec in &Codec::ALL {
        if codec.is_raw() {
            continue;
        }
        let (run, _) = mk(codec);
        let cell = format!("2d {}", codec.label());
        assert_eq!(base.parent, run.parent, "{cell}: parents diverged");
        assert_eq!(base.visited, run.visited, "{cell}: visited diverged");
        let discovered = |r: &numa_bfs::core::engine2d::Bfs2DRun| -> Vec<u64> {
            r.profile.levels.iter().map(|l| l.discovered).collect()
        };
        assert_eq!(
            discovered(&base),
            discovered(&run),
            "{cell}: discovery schedule diverged"
        );
    }
}

/// The headline differential at depth: scales 14–18 under the paper's
/// tuned configuration, delta-varint and sieve against Raw. This is the
/// expensive sweep, so it covers the two codecs the snapshot commits to.
#[test]
fn delta_varint_and_sieve_hold_at_scale() {
    for scale in [14, 16, 18] {
        for codec in [Codec::DeltaVarint, Codec::Sieve] {
            let (raw, wire) = wire_bytes_cell(
                scale,
                OptLevel::Granularity(256),
                TdStrategy::SparseAllgather,
                codec,
            );
            assert!(
                wire < raw,
                "scale {scale} {}: wire {wire} must undercut raw {raw}",
                codec.label()
            );
        }
    }
}
