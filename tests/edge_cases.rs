//! Adversarial graph shapes and failure injection for the distributed
//! engine and the validator.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::validate::validate_bfs_tree;
use numa_bfs::graph::{Csr, Edge, EdgeList, GraphBuilder, NO_PARENT};
use numa_bfs::topology::MachineConfig;

fn machine() -> MachineConfig {
    MachineConfig::small_test_cluster(2, 4)
}

fn run(graph: &Csr, root: usize) -> numa_bfs::core::engine::BfsRun {
    let scenario = Scenario::new(machine(), OptLevel::Granularity(256));
    DistributedBfs::new(graph, &scenario).run(root)
}

fn check(graph: &Csr, root: usize) {
    let r = run(graph, root);
    let visited =
        validate_bfs_tree(graph, root, &r.parent).unwrap_or_else(|e| panic!("root {root}: {e}"));
    assert_eq!(visited, graph.component_of(root).len());
}

#[test]
fn star_graph_one_level() {
    // Hub 0 connected to everything: BFS is a single giant level, which
    // forces an immediate top-down -> bottom-up switch.
    let n = 2000;
    let el = EdgeList::new(n, (1..n).map(|v| Edge::new(0, v)).collect());
    let g = Csr::from_edge_list(&el);
    check(&g, 0);
    // From a leaf the search needs exactly two levels.
    let r = run(&g, 17);
    assert_eq!(r.visited, n);
    assert!(r.profile.levels.len() >= 2);
}

#[test]
fn long_chain_many_levels() {
    // A path graph: frontier of one vertex per level — maximally deep,
    // stressing per-level overheads and the switch heuristic's tail.
    let n = 600;
    let el = EdgeList::new(n, (0..n - 1).map(|v| Edge::new(v, v + 1)).collect());
    let g = Csr::from_edge_list(&el);
    let r = run(&g, 0);
    assert_eq!(r.visited, n);
    assert!(
        r.profile.levels.len() >= n - 1,
        "chain must take one level per hop, got {}",
        r.profile.levels.len()
    );
    check(&g, 0);
    check(&g, n / 2);
}

#[test]
fn complete_bipartite_two_levels() {
    let (a, b) = (40usize, 60usize);
    let mut edges = Vec::new();
    for u in 0..a {
        for v in 0..b {
            edges.push(Edge::new(u, a + v));
        }
    }
    let g = Csr::from_edge_list(&EdgeList::new(a + b, edges));
    let r = run(&g, 0);
    assert_eq!(r.visited, a + b);
    check(&g, 0);
}

#[test]
fn disconnected_islands_stay_unvisited() {
    // Two components; searching one must not leak into the other.
    let mut edges: Vec<Edge> = (0..50).map(|v| Edge::new(v, v + 1)).collect();
    edges.extend((60..90).map(|v| Edge::new(v, v + 1)));
    let g = Csr::from_edge_list(&EdgeList::new(100, edges));
    let r = run(&g, 0);
    assert_eq!(r.visited, 51);
    for v in 60..=90 {
        assert_eq!(r.parent[v], NO_PARENT, "vertex {v} leaked");
    }
    check(&g, 70);
}

#[test]
fn two_vertex_graph() {
    let g = Csr::from_edge_list(&EdgeList::new(2, vec![Edge::new(0, 1)]));
    let r = run(&g, 1);
    assert_eq!(r.visited, 2);
    assert_eq!(r.parent[0], 1);
    assert_eq!(r.parent[1], 1);
}

#[test]
fn graph_smaller_than_world_size() {
    // 8 ranks, 6 vertices: some ranks own nothing at all.
    let g = Csr::from_edge_list(&EdgeList::new(
        6,
        vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(3, 4)],
    ));
    check(&g, 0);
    check(&g, 3);
}

#[test]
fn multigraph_input_collapses() {
    // Heavy duplication and self loops in the raw list.
    let mut edges = Vec::new();
    for _ in 0..20 {
        edges.push(Edge::new(0, 1));
        edges.push(Edge::new(1, 0));
        edges.push(Edge::new(2, 2));
        edges.push(Edge::new(1, 2));
    }
    let g = Csr::from_edge_list(&EdgeList::new(3, edges));
    assert_eq!(g.num_edges(), 2);
    check(&g, 0);
}

// --- failure injection --------------------------------------------------

#[test]
fn validator_catches_corrupted_distributed_results() {
    let g = GraphBuilder::rmat(11, 8).seed(3).build();
    let root = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    let good = run(&g, root);
    assert!(validate_bfs_tree(&g, root, &good.parent).is_ok());

    // Corruption 1: claim an unvisited vertex was reached through a
    // non-edge.
    let mut bad = good.parent.clone();
    let victim = (0..g.num_vertices())
        .find(|&v| bad[v] != NO_PARENT && v != root && !g.has_edge(v, root))
        .expect("some visited vertex is not adjacent to the root");
    bad[victim] = root as u32;
    assert!(
        validate_bfs_tree(&g, root, &bad).is_err(),
        "fabricated tree edge must be rejected"
    );

    // Corruption 2: drop a visited vertex (its neighbours stay visited).
    let mut bad = good.parent.clone();
    let victim = (0..g.num_vertices())
        .find(|&v| bad[v] != NO_PARENT && v != root && g.degree(v) > 0)
        .unwrap();
    bad[victim] = NO_PARENT;
    assert!(validate_bfs_tree(&g, root, &bad).is_err());

    // Corruption 3: swap two parents to break the level structure.
    let mut bad = good.parent.clone();
    bad[root] = NO_PARENT;
    assert!(validate_bfs_tree(&g, root, &bad).is_err());
}

#[test]
fn weak_node_only_slows_communication() {
    // Injecting the paper's degraded node must slow multi-node runs but
    // never change the computed tree.
    let g = GraphBuilder::rmat(12, 8).seed(5).build();
    let root = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    let healthy = MachineConfig::small_test_cluster(4, 4);
    let degraded = healthy.clone().with_weak_node(2, 0.3);

    let a = DistributedBfs::new(&g, &Scenario::new(healthy, OptLevel::ParAllgather)).run(root);
    let b = DistributedBfs::new(&g, &Scenario::new(degraded, OptLevel::ParAllgather)).run(root);
    assert_eq!(a.parent, b.parent, "a slow NIC must not change the answer");
    assert!(
        b.profile.bu_comm > a.profile.bu_comm,
        "degraded network must show up in communication time"
    );
    assert_eq!(
        a.profile.bu_comp.as_secs(),
        b.profile.bu_comp.as_secs(),
        "computation must be untouched"
    );
}

#[test]
fn invalid_machine_configurations_rejected() {
    let mut m = machine();
    m.nodes = 0;
    assert!(m.validate().is_err());

    let m = machine();
    let result = std::panic::catch_unwind(|| {
        let mut bad = m.clone();
        bad.socket.mem_bw = -1.0;
        Scenario::new(bad, OptLevel::ShareAll)
    });
    assert!(result.is_err(), "negative bandwidth must be rejected");
}
