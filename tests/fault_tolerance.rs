//! The fault-tolerance contract of the simulated runtime: recoverable
//! fault plans leave the BFS **bit-identical** to the fault-free run (the
//! recovery layer charges time, never changes data), unrecoverable plans
//! degrade to structured `NbfsError`s — never a hang or panic — and the
//! same seed reproduces the identical fault report.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::comm::{FaultPlan, FaultScope, FaultSpec};
use numa_bfs::core::engine::{DistributedBfs, Scenario, TdStrategy};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::core::profile::Phase;
use numa_bfs::graph::{Csr, GraphBuilder};
use numa_bfs::topology::presets;
use numa_bfs::trace::{FaultKind, FaultOp, TraceConfig};
use numa_bfs::util::{NbfsError, SimTime};

fn graph() -> Csr {
    GraphBuilder::rmat(10, 16).seed(1).build()
}

fn scenario(opt: OptLevel, faults: Option<FaultPlan>) -> Scenario {
    let machine = presets::xeon_x7550_cluster(4).scaled_to_graph(10, 28);
    let mut builder = Scenario::builder(machine, opt).trace(TraceConfig::Standard);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    builder.build().unwrap()
}

/// A drop on every first attempt of every covered site: the retry layer
/// must recover each one, so the run succeeds with pure time penalties.
fn drop_everywhere(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()))
}

#[test]
fn every_engine_in_the_ladder_recovers_drops_bit_identically() {
    let g = graph();
    for opt in OptLevel::LADDER {
        let clean = DistributedBfs::new(&g, &scenario(opt, None)).run(0);
        let (faulted, report) = DistributedBfs::new(&g, &scenario(opt, Some(drop_everywhere(42))))
            .try_run_traced(0)
            .unwrap_or_else(|e| panic!("{}: drop plan must recover, got {e}", opt.label()));
        assert_eq!(
            faulted.parent,
            clean.parent,
            "{}: recovered parents differ",
            opt.label()
        );
        assert_eq!(faulted.visited, clean.visited, "{}", opt.label());
        assert_eq!(
            faulted.profile.levels.len(),
            clean.profile.levels.len(),
            "{}: level structure differs",
            opt.label()
        );
        assert!(
            !report.faults.is_empty(),
            "{}: plan never fired",
            opt.label()
        );
        assert!(
            report.faults.iter().all(|f| f.recovered),
            "{}: every drop must be recovered",
            opt.label()
        );
        // Recovery charges time: the faulted run is strictly slower.
        assert!(
            faulted.profile.total() > clean.profile.total(),
            "{}: retries must cost simulated time",
            opt.label()
        );
    }
}

#[test]
fn edge_scoped_single_drop_recovers_and_names_its_level() {
    let g = graph();
    // Only the first ring edge of level 1 drops; everything else is clean.
    let plan = FaultPlan::new(9).spec(FaultSpec::new(
        FaultKind::Drop,
        FaultScope::any().src(0).level(1),
    ));
    let clean = DistributedBfs::new(&g, &scenario(OptLevel::OriginalPpn8, None)).run(0);
    let (faulted, report) = DistributedBfs::new(&g, &scenario(OptLevel::OriginalPpn8, Some(plan)))
        .try_run_traced(0)
        .unwrap();
    assert_eq!(faulted.parent, clean.parent);
    assert!(!report.faults.is_empty());
    assert!(
        report.faults.iter().all(|f| f.level == 1 && f.src == 0),
        "scope must confine faults to level 1 edges from rank 0: {:?}",
        report.faults
    );
}

#[test]
fn collective_crash_is_a_structured_error_naming_the_edge() {
    let g = graph();
    let plan = FaultPlan::new(3).spec(FaultSpec::new(FaultKind::Crash, FaultScope::any()));
    let engine = DistributedBfs::new(&g, &scenario(OptLevel::ShareAll, Some(plan)));
    match engine.try_run(0) {
        Err(NbfsError::Fault {
            op, kind, level, ..
        }) => {
            assert_eq!(kind, "crash");
            assert!(!op.is_empty());
            assert_eq!(level, Some(0), "first covered collective is at level 0");
        }
        other => panic!("expected structured Fault error, got {other:?}"),
    }
}

#[test]
fn rank_crash_surfaces_the_failing_rank() {
    let g = graph();
    let plan = FaultPlan::new(5).spec(FaultSpec::new(
        FaultKind::Crash,
        FaultScope::any().op(FaultOp::Rank).src(3),
    ));
    let engine = DistributedBfs::new(&g, &scenario(OptLevel::ShareAll, Some(plan)));
    match engine.try_run(0) {
        Err(NbfsError::RankFailed { rank }) => assert_eq!(rank, 3),
        other => panic!("expected RankFailed {{ rank: 3 }}, got {other:?}"),
    }
}

#[test]
fn exhausted_retry_budget_degrades_gracefully() {
    let g = graph();
    let plan = FaultPlan::new(1)
        .spec(FaultSpec::new(FaultKind::Drop, FaultScope::any()).every_attempt())
        .max_attempts(2);
    let engine = DistributedBfs::new(&g, &scenario(OptLevel::OriginalPpn1, Some(plan)));
    match engine.try_run(0) {
        Err(NbfsError::Fault { kind, attempts, .. }) => {
            assert_eq!(kind, "drop");
            assert_eq!(attempts, 2, "budget of 2 attempts was exhausted");
        }
        other => panic!("expected exhausted-budget Fault error, got {other:?}"),
    }
}

#[test]
fn fault_reports_are_seed_deterministic_and_projection_exact() {
    let g = graph();
    let run = || {
        DistributedBfs::new(
            &g,
            &scenario(OptLevel::ParAllgather, Some(drop_everywhere(7))),
        )
        .try_run_traced(0)
        .unwrap()
    };
    let (run_a, report_a) = run();
    let (_, report_b) = run();
    assert_eq!(
        report_a.to_json().unwrap(),
        report_b.to_json().unwrap(),
        "same seed must reproduce a byte-identical TraceReport"
    );
    assert_eq!(report_a.recovered_faults(), report_a.faults.len());
    assert!(report_a.fault_penalty() > SimTime::ZERO);
    // Fault penalties flow through the same per-level accumulators the
    // Level events carry, so the profile projection stays bitwise exact
    // even under injection.
    let projected = report_a.run_profile();
    for phase in Phase::ALL {
        assert!(
            projected.phase(phase) == run_a.profile.phase(phase),
            "faulted projection diverged in phase {}",
            phase.label()
        );
    }
}

#[test]
fn alltoallv_strategy_recovers_drops_bit_identically() {
    let g = graph();
    let machine = presets::xeon_x7550_cluster(4).scaled_to_graph(10, 28);
    let build = |faults: Option<FaultPlan>| {
        let mut b = Scenario::builder(machine.clone(), OptLevel::ShareAll)
            .td_strategy(TdStrategy::Alltoallv)
            .trace(TraceConfig::Standard);
        if let Some(plan) = faults {
            b = b.faults(plan);
        }
        b.build().unwrap()
    };
    let clean = DistributedBfs::new(&g, &build(None)).run(0);
    let (faulted, report) = DistributedBfs::new(&g, &build(Some(drop_everywhere(11))))
        .try_run_traced(0)
        .unwrap();
    assert_eq!(faulted.parent, clean.parent);
    assert!(report
        .faults
        .iter()
        .any(|f| f.op == FaultOp::Collective(numa_bfs::trace::CollectiveKind::Alltoallv)));
}
