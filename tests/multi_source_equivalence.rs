//! Differential conformance suite for the bit-parallel multi-source BFS.
//!
//! Pins the contract behind `nbfs serve-bench` and the `QueryEngine`: every
//! lane of a fused wave — parents, visited counts, and per-level traces — is
//! **bitwise identical** to a per-root run of the scalar `Reference` oracle
//! (`numa_bfs::core::multi::reference_single_source`), regardless of batch
//! size, batch composition, thread-pool width, workspace reuse, duplicate
//! roots, or isolated-vertex roots. Scales 14-18 are covered: the full
//! batch x pool matrix at scale 14, and a per-scale spot sweep above that so
//! the suite stays inside the tier-1 debug-test budget.

// Test code opts back into unwrap ergonomics; the workspace denies it in
// library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use numa_bfs::core::multi::{
    multi_source_bfs, multi_source_bfs_in, reference_single_source, LaneAnswer, MultiWorkspace,
    MAX_LANES,
};
use numa_bfs::core::query::QueryEngine;
use numa_bfs::graph::{Csr, GraphBuilder};
use numa_bfs::util::rng::Xoroshiro128;

/// The Graph500 edge factor used across the repo's experiments.
const EDGE_FACTOR: usize = 16;

/// Batch sizes exercised by the conformance matrix.
const BATCH_SIZES: [usize; 3] = [1, 7, MAX_LANES];

/// Thread-pool widths exercised by the conformance matrix.
const POOL_WIDTHS: [usize; 3] = [1, 3, 7];

fn rmat(scale: u32, seed: u64) -> Csr {
    GraphBuilder::rmat(scale, EDGE_FACTOR).seed(seed).build()
}

/// Sample `count` connected roots (with replacement, so duplicates occur
/// naturally at larger batch sizes).
fn sample_roots(g: &Csr, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = Xoroshiro128::new(seed);
    let mut roots = Vec::new();
    while roots.len() < count {
        let v = rng.next_below(g.num_vertices() as u64) as usize;
        if g.degree(v) > 0 {
            roots.push(v);
        }
    }
    roots
}

/// Assert every lane of a fused wave equals the scalar `Reference` oracle,
/// reusing oracle answers for duplicated roots.
fn assert_wave_matches_reference(g: &Csr, roots: &[usize], lanes: &[LaneAnswer], label: &str) {
    assert_eq!(lanes.len(), roots.len(), "{label}: lane count");
    let mut oracle: Vec<(usize, LaneAnswer)> = Vec::new();
    for (lane, (&root, answer)) in roots.iter().zip(lanes).enumerate() {
        let reference = match oracle.iter().find(|(r, _)| *r == root) {
            Some((_, cached)) => cached.clone(),
            None => {
                let fresh = reference_single_source(g, root);
                oracle.push((root, fresh.clone()));
                fresh
            }
        };
        assert_eq!(answer.root, root, "{label}: lane {lane} root");
        assert_eq!(
            answer.visited, reference.visited,
            "{label}: lane {lane} (root {root}) visited count"
        );
        assert_eq!(
            answer.level_discovered, reference.level_discovered,
            "{label}: lane {lane} (root {root}) level trace"
        );
        assert_eq!(
            answer.parent, reference.parent,
            "{label}: lane {lane} (root {root}) parent array"
        );
    }
}

/// Scale 14, full matrix: batch sizes 1/7/64 under 1/3/7-thread pools, with a
/// reused workspace, must all be bitwise identical to per-root `Reference`
/// runs — and to each other.
#[test]
fn scale_14_full_batch_by_pool_matrix_matches_reference() {
    let g = rmat(14, 140);
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        let mut roots = sample_roots(&g, batch, 0xBA7C + i as u64);
        if batch >= 2 {
            // Force at least one duplicate pair into every multi-lane batch.
            roots[batch - 1] = roots[0];
        }
        let mut runs = Vec::new();
        for &threads in &POOL_WIDTHS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut ws = MultiWorkspace::new();
            // Two waves through the same workspace: the second proves reuse
            // does not leak state between waves.
            pool.install(|| multi_source_bfs_in(&g, &roots, &mut ws));
            let run = pool.install(|| multi_source_bfs_in(&g, &roots, &mut ws));
            assert_wave_matches_reference(
                &g,
                &roots,
                &run.lanes,
                &format!("scale 14, batch {batch}, {threads} threads"),
            );
            runs.push((threads, run));
        }
        let (_, first) = &runs[0];
        for (threads, run) in &runs[1..] {
            assert_eq!(
                run.lanes, first.lanes,
                "scale 14, batch {batch}: {threads}-thread pool diverged from 1-thread pool"
            );
            assert_eq!(run.wave_levels, first.wave_levels);
            assert_eq!(run.edges_scanned, first.edges_scanned);
        }
    }
}

/// Scales 15-18: one mid-size batch per scale must match per-root `Reference`
/// runs bit for bit. Keeps the large-graph portion of the matrix to a single
/// wave per scale so the suite stays fast in debug builds.
#[test]
fn scales_15_through_18_match_reference() {
    for scale in 15u32..=18 {
        let g = rmat(scale, u64::from(scale));
        let mut roots = sample_roots(&g, 6, 0x600D + u64::from(scale));
        roots[5] = roots[2]; // duplicate pair at every scale
        if let Some(isolated) = (0..g.num_vertices()).find(|&v| g.degree(v) == 0) {
            roots[4] = isolated; // isolated-vertex lane at every scale
        }
        let run = multi_source_bfs(&g, &roots);
        assert_wave_matches_reference(&g, &roots, &run.lanes, &format!("scale {scale}"));
    }
}

/// Duplicate roots occupy distinct lanes yet produce byte-for-byte equal
/// answers, and a batch of 64 copies of one root equals a singleton batch.
#[test]
fn duplicate_roots_are_lane_for_lane_identical() {
    let g = rmat(14, 141);
    let root = sample_roots(&g, 1, 7)[0];
    let all_same = vec![root; MAX_LANES];
    let wave = multi_source_bfs(&g, &all_same);
    let single = multi_source_bfs(&g, &[root]);
    for (lane, answer) in wave.lanes.iter().enumerate() {
        assert_eq!(
            answer, &single.lanes[0],
            "lane {lane} of a 64-duplicate batch diverged from the singleton run"
        );
    }
    assert_wave_matches_reference(&g, &all_same, &wave.lanes, "64 duplicate roots");
}

/// Isolated-vertex roots (degree 0) terminate after one empty level and match
/// the `Reference` oracle, even when mixed into a batch of connected roots.
#[test]
fn isolated_roots_match_reference_inside_mixed_batches() {
    let g = rmat(14, 140);
    let isolated = (0..g.num_vertices())
        .find(|&v| g.degree(v) == 0)
        .expect("an R-MAT graph at scale 14 has isolated vertices");
    let mut roots = sample_roots(&g, 7, 0x150);
    roots[3] = isolated;
    let run = multi_source_bfs(&g, &roots);
    assert_wave_matches_reference(&g, &roots, &run.lanes, "mixed isolated batch");
    let lane = &run.lanes[3];
    assert_eq!(lane.visited, 1, "isolated root visits only itself");
    assert_eq!(
        lane.level_discovered,
        vec![0],
        "isolated root records exactly one empty level"
    );
}

/// Concurrent submitters through the `QueryEngine` receive the same answers
/// as per-root `Reference` runs — admission/batching never alters a result.
#[test]
fn query_engine_answers_match_reference_under_concurrency() {
    let g = rmat(14, 142);
    let engine = QueryEngine::bit_parallel(&g);
    let roots = sample_roots(&g, 24, 0xC0);
    let answers: Vec<LaneAnswer> = std::thread::scope(|s| {
        let handles: Vec<_> = roots
            .iter()
            .map(|&root| {
                let engine = &engine;
                s.spawn(move || engine.query(root))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_wave_matches_reference(&g, &roots, &answers, "query engine, 24 submitters");
    let stats = engine.stats();
    assert_eq!(stats.queries, roots.len() as u64);
    assert!(
        stats.waves >= 1 && stats.waves <= roots.len() as u64,
        "wave count must stay within [1, queries] (got {} waves)",
        stats.waves
    );
}
