//! Cross-crate integration: generator → partitioner → distributed engine →
//! validator, across the whole optimization ladder and several machines.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::core::seq;
use numa_bfs::graph::validate::validate_bfs_tree;
use numa_bfs::graph::{GraphBuilder, NO_PARENT};
use numa_bfs::topology::{presets, MachineConfig};
use numa_bfs::util::SimTime;

fn machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("1n8s", presets::xeon_x7550_node().scaled_to_graph(12, 26)),
        (
            "4n8s",
            presets::xeon_x7550_cluster(4).scaled_to_graph(12, 26),
        ),
        ("2n4s", MachineConfig::small_test_cluster(2, 4)),
        ("3n2s", MachineConfig::small_test_cluster(3, 2)),
    ]
}

#[test]
fn every_opt_level_on_every_machine_validates() {
    let graph = GraphBuilder::rmat(12, 8).seed(77).build();
    let root = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let expected_component = graph.component_of(root).len();
    for (name, machine) in machines() {
        for opt in OptLevel::LADDER {
            let scenario = Scenario::new(machine.clone(), opt);
            let run = DistributedBfs::new(&graph, &scenario).run(root);
            let visited = validate_bfs_tree(&graph, root, &run.parent)
                .unwrap_or_else(|e| panic!("{name}/{opt:?}: {e}"));
            assert_eq!(visited, expected_component, "{name}/{opt:?}");
            assert!(run.profile.total() > SimTime::ZERO, "{name}/{opt:?}");
        }
    }
}

#[test]
fn distributed_visits_exactly_the_sequential_set() {
    let graph = GraphBuilder::rmat(12, 8).seed(101).build();
    let seq_run = seq::bfs_top_down(&graph, 2);
    for (name, machine) in machines() {
        let scenario = Scenario::new(machine, OptLevel::Granularity(256));
        let run = DistributedBfs::new(&graph, &scenario).run(2);
        for v in 0..graph.num_vertices() {
            assert_eq!(
                seq_run.parent[v] != NO_PARENT,
                run.parent[v] != NO_PARENT,
                "{name}: vertex {v}"
            );
        }
    }
}

#[test]
fn all_opt_levels_agree_on_the_tree_shape_metrics() {
    // Different collectives/placements must not change what is computed —
    // only how long it takes. Depth histograms are a strong shape check.
    let graph = GraphBuilder::rmat(12, 8).seed(5).build();
    let root = (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let machine = MachineConfig::small_test_cluster(2, 4);

    let depth_histogram = |parent: &[u32]| -> Vec<usize> {
        let mut depth = vec![usize::MAX; parent.len()];
        depth[root] = 0;
        let mut hist = vec![1usize];
        // Repeated relaxation is fine at this size.
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..parent.len() {
                if parent[v] == NO_PARENT || v == root || depth[v] != usize::MAX {
                    continue;
                }
                let p = parent[v] as usize;
                if depth[p] != usize::MAX {
                    depth[v] = depth[p] + 1;
                    if hist.len() <= depth[v] {
                        hist.resize(depth[v] + 1, 0);
                    }
                    hist[depth[v]] += 1;
                    changed = true;
                }
            }
        }
        hist
    };

    let mut reference: Option<Vec<usize>> = None;
    for opt in OptLevel::LADDER {
        let scenario = Scenario::new(machine.clone(), opt);
        let run = DistributedBfs::new(&graph, &scenario).run(root);
        let hist = depth_histogram(&run.parent);
        match &reference {
            None => reference = Some(hist),
            Some(r) => assert_eq!(&hist, r, "{opt:?} changed the BFS level structure"),
        }
    }
}

#[test]
fn simulated_time_is_scale_monotone() {
    // A bigger graph on the same machine must take longer under every
    // optimization level.
    let machine = MachineConfig::small_test_cluster(2, 4);
    for opt in [OptLevel::OriginalPpn8, OptLevel::Granularity(256)] {
        let mut prev = SimTime::ZERO;
        for scale in [10u32, 12, 14] {
            let graph = GraphBuilder::rmat(scale, 8).seed(3).build();
            let root = (0..graph.num_vertices())
                .max_by_key(|&v| graph.degree(v))
                .unwrap();
            let scenario = Scenario::new(machine.clone(), opt);
            let t = DistributedBfs::new(&graph, &scenario)
                .run(root)
                .profile
                .total();
            assert!(t > prev, "{opt:?} scale {scale}: {t:?} !> {prev:?}");
            prev = t;
        }
    }
}
