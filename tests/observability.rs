//! The observability contract: a `TraceReport` is a lossless superset of
//! the engine's `RunProfile` (the projection reproduces it **bitwise**),
//! tracing is behaviour-preserving (`Off` or not, the BFS result is
//! identical), the JSON exchange format round-trips under a pinned schema
//! version, and the builder facade is a drop-in for the legacy
//! constructor chains.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::direction::SwitchPolicy;
use numa_bfs::core::engine::{DistributedBfs, NoClock, Scenario, TdStrategy};
use numa_bfs::core::engine2d::TwoDimBfs;
use numa_bfs::core::harness::HarnessConfig;
use numa_bfs::core::opt::OptLevel;
use numa_bfs::core::par::bfs_hybrid_parallel_traced;
use numa_bfs::core::profile::{Phase, RunProfile};
use numa_bfs::graph::{Csr, GraphBuilder};
use numa_bfs::topology::{presets, MachineConfig, PlacementPolicy};
use numa_bfs::trace::{TraceConfig, TraceReport, SCHEMA_VERSION};

fn graph() -> Csr {
    GraphBuilder::rmat(11, 8).seed(5).build()
}

/// Bitwise (not approximate) equality of two profiles: every phase slice,
/// the step split, the phase counter and every per-level row.
fn assert_profiles_bitwise(projected: &RunProfile, engine: &RunProfile, context: &str) {
    for phase in Phase::ALL {
        assert!(
            projected.phase(phase) == engine.phase(phase),
            "{context}: phase {} differs: {:?} vs {:?}",
            phase.label(),
            projected.phase(phase),
            engine.phase(phase),
        );
    }
    assert!(
        projected.bu_comm_detail == engine.bu_comm_detail,
        "{context}: bu_comm_detail differs"
    );
    assert_eq!(
        projected.bu_comm_phases, engine.bu_comm_phases,
        "{context}: bu_comm_phases"
    );
    assert_eq!(
        projected.levels.len(),
        engine.levels.len(),
        "{context}: level count"
    );
    for (i, (p, e)) in projected.levels.iter().zip(&engine.levels).enumerate() {
        assert_eq!(p.direction, e.direction, "{context}: level {i} direction");
        assert_eq!(
            p.discovered, e.discovered,
            "{context}: level {i} discovered"
        );
        assert!(
            p.comp == e.comp && p.comm == e.comm && p.stall == e.stall,
            "{context}: level {i} times differ"
        );
    }
}

#[test]
fn trace_projection_is_bitwise_exact_across_the_ladder() {
    let g = graph();
    let machine = presets::xeon_x7550_cluster(2).scaled_to_graph(11, 28);
    for opt in OptLevel::LADDER {
        let scenario = Scenario::builder(machine.clone(), opt)
            .trace(TraceConfig::Standard)
            .build()
            .unwrap();
        let (run, report) = DistributedBfs::new(&g, &scenario).run_traced(0);
        assert_eq!(report.dropped_events, 0, "{}", opt.label());
        assert_profiles_bitwise(&report.run_profile(), &run.profile, &opt.label());
    }
}

#[test]
fn trace_projection_is_bitwise_exact_for_alltoallv_top_down() {
    let g = graph();
    let scenario = Scenario::builder(
        MachineConfig::small_test_cluster(2, 2),
        OptLevel::OriginalPpn8,
    )
    .td_strategy(TdStrategy::Alltoallv)
    .trace(TraceConfig::Standard)
    .build()
    .unwrap();
    let (run, report) = DistributedBfs::new(&g, &scenario).run_traced(0);
    assert_profiles_bitwise(&report.run_profile(), &run.profile, "alltoallv");
}

#[test]
fn trace_projection_is_bitwise_exact_for_2d_engine() {
    let g = graph();
    let scenario = Scenario::builder(
        MachineConfig::small_test_cluster(2, 2),
        OptLevel::OriginalPpn8,
    )
    .trace(TraceConfig::Standard)
    .build()
    .unwrap();
    let (run, report) = TwoDimBfs::new(&g, &scenario).run_traced(0);
    assert_profiles_bitwise(&report.run_profile(), &run.profile, "2d");
}

#[test]
fn tracing_is_behaviour_preserving_and_off_records_nothing() {
    let g = graph();
    let machine = presets::xeon_x7550_cluster(2).scaled_to_graph(11, 28);
    // Off (the default): run_traced must return the identical BfsRun and
    // an empty report.
    let off = Scenario::builder(machine.clone(), OptLevel::ShareAll)
        .build()
        .unwrap();
    let engine = DistributedBfs::new(&g, &off);
    let plain = engine.run(0);
    let (traced, report) = engine.run_traced(0);
    assert_eq!(plain.parent, traced.parent);
    assert_eq!(plain.visited, traced.visited);
    assert_profiles_bitwise(&plain.profile, &traced.profile, "off-identity");
    assert!(report.levels.is_empty() && report.decisions.is_empty());

    // Standard: recording events must not perturb the simulation either.
    let on = Scenario::builder(machine, OptLevel::ShareAll)
        .trace(TraceConfig::Standard)
        .build()
        .unwrap();
    let (recorded, _) = DistributedBfs::new(&g, &on).run_traced(0);
    assert_eq!(plain.parent, recorded.parent);
    assert_profiles_bitwise(&plain.profile, &recorded.profile, "standard-identity");
}

#[test]
fn trace_report_json_round_trips_under_pinned_schema() {
    let g = graph();
    let scenario = Scenario::builder(
        MachineConfig::small_test_cluster(2, 2),
        OptLevel::Granularity(256),
    )
    .trace(TraceConfig::Standard)
    .build()
    .unwrap();
    let (_, report) = DistributedBfs::new(&g, &scenario).run_traced(0);

    // Schema pin: bumping SCHEMA_VERSION without migrating consumers must
    // trip this test. v2 added the fault-record list (v1 imports read it
    // as empty); v3 added CollectiveStats::raw_bytes (v2 imports read it
    // as wire_bytes); v4 added the multi-query `queries` records (v3
    // imports read them as empty — all covered in nbfs-trace's report
    // tests).
    assert_eq!(SCHEMA_VERSION, 4, "schema changed: update exporters");
    assert_eq!(report.schema_version, SCHEMA_VERSION);

    let json = report.to_json().unwrap();
    assert!(json.contains("\"schema_version\": 4"), "{json}");
    let back = TraceReport::from_json(&json).unwrap();
    assert_eq!(back, report);

    // A report stamped with a future schema is refused, not misread.
    let future = json.replacen("\"schema_version\": 4", "\"schema_version\": 999", 1);
    assert!(TraceReport::from_json(&future).is_err());
}

#[test]
fn parallel_kernel_trace_carries_real_execution_counters() {
    let g = graph();
    let (run, report) = bfs_hybrid_parallel_traced(
        &g,
        0,
        SwitchPolicy::default(),
        TraceConfig::Standard,
        &NoClock,
    );
    assert_eq!(report.levels.len(), run.levels.len());
    let traced: u64 = report.levels.iter().map(|l| l.discovered).sum();
    let engine: u64 = run.levels.iter().map(|l| l.discovered).sum();
    assert_eq!(traced, engine);
    // The shared-memory kernel runs for real; simulated times stay zero.
    assert!(report.total() == numa_bfs::util::SimTime::ZERO);
    assert_eq!(report.meta.opt_label, "shared-memory");
}

#[test]
fn scenario_builder_is_a_drop_in_for_the_legacy_chain() {
    let g = graph();
    let machine = presets::xeon_x7550_node().scaled_to_graph(11, 28);
    let legacy = Scenario::new(machine.clone(), OptLevel::OriginalPpn8)
        .with_switch_policy(SwitchPolicy::default())
        .with_placement(4, PlacementPolicy::Interleave)
        .with_td_strategy(TdStrategy::Alltoallv);
    let built = Scenario::builder(machine, OptLevel::OriginalPpn8)
        .switch_policy(SwitchPolicy::default())
        .placement(4, PlacementPolicy::Interleave)
        .td_strategy(TdStrategy::Alltoallv)
        .build()
        .unwrap();
    let a = DistributedBfs::new(&g, &legacy).run(7);
    let b = DistributedBfs::new(&g, &built).run(7);
    assert_eq!(a.parent, b.parent);
    assert_eq!(a.visited, b.visited);
    assert_profiles_bitwise(&a.profile, &b.profile, "builder-vs-legacy");
}

#[test]
fn harness_config_builder_matches_the_literal() {
    let built = HarnessConfig::builder()
        .roots(3)
        .seed(7)
        .validate(false)
        .build();
    assert_eq!(built.roots, 3);
    assert_eq!(built.seed, 7);
    assert!(!built.validate);
    // An invalid machine is a builder error, not a panic.
    let mut bad = MachineConfig::small_test_cluster(2, 2);
    bad.nodes = 0;
    assert!(Scenario::builder(bad, OptLevel::ShareAll).build().is_err());
}
