//! Shape-level checks of the paper's headline claims, run end to end on
//! the simulated cluster. Absolute numbers differ (our substrate is a
//! model), but the *directions and rough factors* the paper reports must
//! hold. Each test names the claim it guards.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::harness::{Graph500Harness, HarnessConfig};
use numa_bfs::core::opt::OptLevel;
use numa_bfs::graph::GraphBuilder;
use numa_bfs::topology::{presets, PlacementPolicy};

const GRAPH_SCALE: u32 = 15;
const PAPER_SCALE_1NODE: u32 = 28;

fn best_root(graph: &numa_bfs::graph::Csr) -> usize {
    (0..graph.num_vertices())
        .max_by_key(|&v| graph.degree(v))
        .unwrap()
}

/// Section II.D / Fig. 9: "simply spawning and binding one MPI process for
/// each socket can achieve the best performance ... 1.53X of performance on
/// 16 nodes" (and 1.74x on one node, Fig. 10).
#[test]
fn one_process_per_socket_beats_one_per_node() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(1).build();
    let root = best_root(&graph);
    let machine = presets::xeon_x7550_node().scaled_to_graph(GRAPH_SCALE, PAPER_SCALE_1NODE);
    let t = |opt| {
        let s = Scenario::new(machine.clone(), opt);
        DistributedBfs::new(&graph, &s).run(root).profile.total()
    };
    let ppn1 = t(OptLevel::OriginalPpn1);
    let ppn8 = t(OptLevel::OriginalPpn8);
    let speedup = ppn1 / ppn8;
    // Paper: 1.74x on one node (Fig. 10). Our loaded-QPI model penalizes
    // the interleaved baseline harder than the real machine did at scale
    // 28 (the same constants reproduce the scale-32 Fig. 9 headline), so
    // the accepted band is wider upward; see EXPERIMENTS.md.
    assert!(
        (1.3..=4.5).contains(&speedup),
        "ppn=8 speedup over ppn=1 is {speedup:.2}, paper: 1.74"
    );
}

/// Fig. 12: "spawning one process per socket results in 2.34 times of
/// execution time in each bottom-up communication phase, compared to one
/// process per node" (8 nodes).
#[test]
fn ppn8_communication_costs_more_per_phase() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(2).build();
    let root = best_root(&graph);
    let machine = presets::xeon_x7550_cluster(8).scaled_to_graph(GRAPH_SCALE, 31);
    let phase = |opt| {
        let s = Scenario::new(machine.clone(), opt);
        DistributedBfs::new(&graph, &s)
            .run(root)
            .profile
            .mean_bu_comm_phase()
    };
    let ratio = phase(OptLevel::OriginalPpn8) / phase(OptLevel::OriginalPpn1);
    assert!(
        (1.5..=4.0).contains(&ratio),
        "comm phase ratio {ratio:.2}, paper: 2.34"
    );
}

/// Fig. 13: the communication optimizations reduce the bottom-up
/// communication phase time "4.07X for eight nodes".
#[test]
fn communication_ladder_reduces_phase_time_several_fold() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(3).build();
    let root = best_root(&graph);
    let machine = presets::xeon_x7550_cluster(8).scaled_to_graph(GRAPH_SCALE, 31);
    let phase = |opt| {
        let s = Scenario::new(machine.clone(), opt);
        DistributedBfs::new(&graph, &s)
            .run(root)
            .profile
            .mean_bu_comm_phase()
    };
    let original = phase(OptLevel::OriginalPpn8);
    let share_in = phase(OptLevel::ShareInQueue);
    let share_all = phase(OptLevel::ShareAll);
    let par = phase(OptLevel::ParAllgather);
    assert!(share_in < original, "share in_queue must cut comm");
    assert!(share_all <= share_in * 1.001);
    assert!(par < share_all, "parallel allgather must cut the wire time");
    let reduction = original / par;
    assert!(
        (2.0..=8.0).contains(&reduction),
        "total reduction {reduction:.2}, paper: 4.07"
    );
    // "Share in_queue has the most significant effect, which can cut off
    // about half of the communication cost."
    let first_cut = original / share_in;
    assert!(
        (1.5..=4.5).contains(&first_cut),
        "share in_queue cut {first_cut:.2}, paper: ~2"
    );
}

/// Fig. 14: the proportion of time in bottom-up communication drops from
/// ~54% to ~18% on eight nodes.
#[test]
fn communication_share_of_total_drops() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(4).build();
    let root = best_root(&graph);
    let machine = presets::xeon_x7550_cluster(8).scaled_to_graph(GRAPH_SCALE, 31);
    let frac = |opt| {
        let s = Scenario::new(machine.clone(), opt);
        DistributedBfs::new(&graph, &s)
            .run(root)
            .profile
            .bu_comm_fraction()
    };
    let before = frac(OptLevel::OriginalPpn8);
    let after = frac(OptLevel::ParAllgather);
    assert!(
        before > 0.3,
        "unoptimized comm share {before:.2} should be large (paper: 0.54)"
    );
    // Paper: 0.54 -> 0.18 (3x). At test scale the drop is weaker (~1.7x):
    // small graphs have few bottom-up levels, so compute is relatively
    // lighter against wire-optimal bitmap transfers. Direction and a
    // substantial drop are the reproducible shape; see EXPERIMENTS.md.
    assert!(
        after < before / 1.4 && after < 0.45,
        "optimized share {after:.2} must drop well below {before:.2} (paper: 0.54 -> 0.18)"
    );
}

/// Fig. 9 end to end: "With all the optimizations together, the speedup is
/// up to 2.44X relative to Original.ppn=1 and 1.60X relative to
/// Original.ppn=8."
#[test]
fn full_ladder_speedup_in_band() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(5).build();
    let machine = presets::cluster2012().scaled_to_graph(GRAPH_SCALE, 32);
    let teps = |opt| {
        let s = Scenario::new(machine.clone(), opt);
        let h = Graph500Harness::new(&graph, &s);
        h.run(&HarnessConfig::quick(3)).harmonic_teps()
    };
    let ppn1 = teps(OptLevel::OriginalPpn1);
    let ppn8 = teps(OptLevel::OriginalPpn8);
    let best = teps(OptLevel::Granularity(256));
    let overall = best / ppn1;
    let vs_ppn8 = best / ppn8;
    assert!(
        (1.5..=4.5).contains(&overall),
        "overall speedup {overall:.2}, paper: 2.44"
    );
    assert!(
        (1.1..=3.6).contains(&vs_ppn8),
        "speedup vs ppn=8 {vs_ppn8:.2}, paper: 1.60 (our ring model charges the
         128-rank Original allgather slightly dearer at small payloads)"
    );
}

/// Fig. 10: the Original code is fastest with bind-to-socket, and noflag
/// loses to interleave.
#[test]
fn placement_ranking_matches_fig10() {
    let graph = GraphBuilder::rmat(GRAPH_SCALE, 16).seed(6).build();
    let root = best_root(&graph);
    let machine = presets::xeon_x7550_node().scaled_to_graph(GRAPH_SCALE, PAPER_SCALE_1NODE);
    let t = |ppn, policy| {
        let s = Scenario::new(machine.clone(), OptLevel::OriginalPpn8).with_placement(ppn, policy);
        DistributedBfs::new(&graph, &s).run(root).profile.total()
    };
    let bind8 = t(8, PlacementPolicy::BindToSocket);
    let inter1 = t(1, PlacementPolicy::Interleave);
    let noflag1 = t(1, PlacementPolicy::Noflag);
    let noflag8 = t(8, PlacementPolicy::Noflag);
    assert!(bind8 < inter1, "bind must beat interleave");
    assert!(inter1 < noflag1, "interleave must beat noflag (ppn=1)");
    assert!(bind8 < noflag8, "bind must beat noflag (ppn=8)");
    let r1 = inter1 / bind8;
    assert!(
        (1.3..=4.5).contains(&r1),
        "bind/interleave speedup {r1:.2}, paper: 1.74 (see EXPERIMENTS.md on the interleave penalty)"
    );
}
