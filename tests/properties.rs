//! Property-based tests (proptest) over the core data structures and the
//! full distributed pipeline.

// Test code opts back into unwrap/narrowing ergonomics; the workspace
// denies both in library targets (see [workspace.lints] in Cargo.toml).
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;

use numa_bfs::comm::allgather::{allgather_words, AllgatherAlgorithm};
use numa_bfs::core::engine::{DistributedBfs, Scenario};
use numa_bfs::core::multi::reference_single_source;
use numa_bfs::core::opt::OptLevel;
use numa_bfs::core::query::QueryEngine;
use numa_bfs::graph::validate::validate_bfs_tree;
use numa_bfs::graph::{Csr, Edge, EdgeList, GraphBuilder};
use numa_bfs::simnet::NetworkModel;
use numa_bfs::topology::{MachineConfig, PlacementPolicy, ProcessMap};
use numa_bfs::util::rng::Xoroshiro128;
use numa_bfs::util::{Bitmap, BlockPartition, SummaryBitmap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any set of bits round-trips through a bitmap exactly.
    #[test]
    fn bitmap_roundtrip(bits in prop::collection::btree_set(0usize..4000, 0..200), len in 4000usize..5000) {
        let bm = Bitmap::from_indices(len, &bits.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bm.count_ones(), bits.len());
        let back: Vec<usize> = bm.iter_ones().collect();
        prop_assert_eq!(back, bits.into_iter().collect::<Vec<_>>());
    }

    /// A summary is zero exactly where every covered bit is zero, for any
    /// granularity.
    #[test]
    fn summary_matches_definition(
        bits in prop::collection::btree_set(0usize..2048, 0..300),
        g_exp in 0u32..5,
    ) {
        let g = 64usize << g_exp;
        let bm = Bitmap::from_indices(2048, &bits.iter().copied().collect::<Vec<_>>());
        let s = SummaryBitmap::build(&bm, g);
        for sb in 0..s.len() {
            let any = (sb * g..((sb + 1) * g).min(2048)).any(|i| bm.get(i));
            prop_assert_eq!(s.as_bitmap().get(sb), any);
        }
    }

    /// Block partitions cover every item exactly once, word-aligned.
    #[test]
    fn partition_is_exact_cover(total in 1usize..100_000, parts in 1usize..40) {
        let p = BlockPartition::new(total, parts);
        let mut count = 0usize;
        for r in 0..parts {
            let (s, e) = p.item_range(r);
            // Non-empty blocks start word-aligned (empty blocks collapse
            // to the clamped end of the item space).
            prop_assert!(s == e || s % 64 == 0);
            for i in s..e {
                prop_assert_eq!(p.owner(i), r);
            }
            count += e - s;
        }
        prop_assert_eq!(count, total);
    }

    /// Every allgather algorithm reassembles arbitrary ragged segments into
    /// the same words and charges non-negative time.
    #[test]
    fn allgather_equivalence(
        seed in 0u64..1000,
        words_each in 1usize..40,
    ) {
        let machine = MachineConfig::small_test_cluster(2, 4);
        let pmap = ProcessMap::new(&machine, 4, PlacementPolicy::BindToSocket);
        let net = NetworkModel::new(&machine);
        let np = pmap.world_size();
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let parts: Vec<Vec<u64>> = (0..np).map(|_| (0..words_each).map(|_| next()).collect()).collect();
        let expect: Vec<u64> = parts.iter().flatten().copied().collect();
        for algo in [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::RecursiveDoubling,
            AllgatherAlgorithm::LeaderBased,
            AllgatherAlgorithm::SharedDest,
            AllgatherAlgorithm::SharedBoth,
            AllgatherAlgorithm::ParallelSubgroup,
        ] {
            let out = allgather_words(&parts, &pmap, &net, algo);
            prop_assert_eq!(&out.words, &expect);
        }
    }

    /// The distributed BFS on arbitrary random graphs always produces a
    /// tree that passes Graph500 validation and spans the root's component.
    #[test]
    fn distributed_bfs_always_validates(
        edges in prop::collection::vec((0u32..200, 0u32..200), 1..400),
        root in 0usize..200,
    ) {
        let el = EdgeList::new(200, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let graph = Csr::from_edge_list(&el);
        let machine = MachineConfig::small_test_cluster(2, 2);
        let scenario = Scenario::new(machine, OptLevel::Granularity(128));
        let run = DistributedBfs::new(&graph, &scenario).run(root);
        let visited = validate_bfs_tree(&graph, root, &run.parent)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(visited, graph.component_of(root).len());
        prop_assert_eq!(visited, run.visited);
    }

    /// Engine determinism holds for arbitrary graphs: same input, same
    /// simulated time and same tree.
    #[test]
    fn engine_determinism(
        edges in prop::collection::vec((0u32..100, 0u32..100), 1..150),
    ) {
        let el = EdgeList::new(100, edges.iter().map(|&(u, v)| Edge { u, v }).collect());
        let graph = Csr::from_edge_list(&el);
        let machine = MachineConfig::small_test_cluster(2, 2);
        let scenario = Scenario::new(machine, OptLevel::ShareAll);
        let engine = DistributedBfs::new(&graph, &scenario);
        let a = engine.run(0);
        let b = engine.run(0);
        prop_assert_eq!(a.parent, b.parent);
        prop_assert_eq!(a.profile.total().as_secs(), b.profile.total().as_secs());
    }

    /// Multi-query engine answers are a permutation-stable function of the
    /// root *multiset*: for random R-MAT graphs and random root multisets
    /// (duplicates and isolated vertices included), admitting the same roots
    /// in a different order never changes any parent array, visited count, or
    /// level trace.
    #[test]
    fn multi_query_answers_are_permutation_stable(
        scale in 8u32..11,
        graph_seed in any::<u64>(),
        picks in prop::collection::vec(any::<u64>(), 2..12),
        shuffle_seed in any::<u64>(),
    ) {
        let graph = GraphBuilder::rmat(scale, 8).seed(graph_seed).build();
        let n = graph.num_vertices() as u64;
        let roots: Vec<usize> = picks.iter().map(|&p| (p % n) as usize).collect();

        // A seeded Fisher-Yates permutation of the admission order.
        let mut perm: Vec<usize> = (0..roots.len()).collect();
        let mut rng = Xoroshiro128::new(shuffle_seed | 1);
        for i in (1..perm.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let permuted: Vec<usize> = perm.iter().map(|&i| roots[i]).collect();

        let engine = QueryEngine::bit_parallel(&graph);
        let a = engine.run_batch(&roots);
        let b = engine.run_batch(&permuted);
        for (j, &i) in perm.iter().enumerate() {
            prop_assert_eq!(&b[j].root, &a[i].root);
            prop_assert_eq!(&b[j].parent, &a[i].parent);
            prop_assert_eq!(b[j].visited, a[i].visited);
            prop_assert_eq!(&b[j].level_discovered, &a[i].level_discovered);
        }

        // And the batch answer for the first root is the scalar Reference
        // answer — batching is invisible to each individual query.
        let oracle = reference_single_source(&graph, roots[0]);
        prop_assert_eq!(&a[0].parent, &oracle.parent);
        prop_assert_eq!(a[0].visited, oracle.visited);
        prop_assert_eq!(&a[0].level_discovered, &oracle.level_discovered);
    }
}
