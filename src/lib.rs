//! # numa-bfs
//!
//! A reproduction of **"Evaluation and Optimization of Breadth-First Search on
//! NUMA Cluster"** (Cui et al., IEEE CLUSTER 2012) as a Rust workspace: the
//! hybrid top-down/bottom-up BFS of Beamer et al., distributed Graph500-style
//! over a *simulated* cluster of multi-socket NUMA nodes, with the paper's
//! three optimization families — one-process-per-socket NUMA mapping, shared
//! communication data structures with parallelized allgather, and summary-
//! bitmap granularity tuning.
//!
//! This facade crate re-exports the public API of the member crates; see
//! `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the reproduced
//! tables and figures.
//!
//! ## Quickstart
//!
//! ```
//! use numa_bfs::prelude::*;
//!
//! // A small Graph500 R-MAT graph.
//! let graph = GraphBuilder::rmat(12, 16).seed(1).build();
//!
//! // A 2-node, 4-socket-per-node simulated cluster.
//! let machine = MachineConfig::small_test_cluster(2, 4);
//!
//! // Run the fully optimized hybrid BFS from root 0.
//! let scenario = Scenario::new(machine, OptLevel::Granularity(256));
//! let run = DistributedBfs::new(&graph, &scenario).run(0);
//! assert!(run.profile.total().as_secs() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use nbfs_comm as comm;
pub use nbfs_core as core;
pub use nbfs_graph as graph;
pub use nbfs_simnet as simnet;
pub use nbfs_topology as topology;
pub use nbfs_trace as trace;
pub use nbfs_util as util;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use nbfs_comm::allgather::AllgatherAlgorithm;
    pub use nbfs_core::engine::{DistributedBfs, Scenario, ScenarioBuilder};
    pub use nbfs_core::harness::{Graph500Harness, HarnessConfig};
    pub use nbfs_core::opt::OptLevel;
    pub use nbfs_core::profile::{Phase, RunProfile};
    pub use nbfs_core::seq::{bfs_bottom_up, bfs_hybrid, bfs_top_down};
    pub use nbfs_graph::builder::GraphBuilder;
    pub use nbfs_graph::csr::Csr;
    pub use nbfs_graph::validate::validate_bfs_tree;
    pub use nbfs_topology::machine::MachineConfig;
    pub use nbfs_topology::placement::{PlacementPolicy, ProcessMap};
    pub use nbfs_trace::{TraceConfig, TraceReport};
    pub use nbfs_util::stats::format_teps;
    pub use nbfs_util::{Bitmap, NbfsError, SimTime, SummaryBitmap};
}
